// The persistent result cache of the tuning service: exactly two records
// per cache key (the tuned best and the -O0 baseline, both honest
// ExperimentRecords in the standard format), so a service restarted
// against the same store answers previously-tuned requests without a
// single simulation.
//
// Two persistence modes:
//   * durable (the default for a service with a KB path) — backed by a
//     kbstore::Store: every store() is WAL-appended and group-committed
//     incrementally; restart runs crash recovery. Legacy CSV KB files are
//     migrated in place on first open and remain available via save()
//     export.
//   * in-memory — a plain kb::KnowledgeBase, for tests and ephemeral
//     services; save() still writes the legacy CSV format.
//
// Keys identify *code*, not names: module fingerprint + objective, with
// the machine carried in the record's machine column. Two requests whose
// modules optimize identically share an entry regardless of how the
// client labeled them.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "kb/knowledge_base.hpp"
#include "kbstore/store.hpp"
#include "search/strategies.hpp"

namespace ilc::svc {

/// What the cache remembers about one (module, machine, objective) key.
struct CachedResult {
  std::string config;                 // best pass sequence, textual
  std::uint64_t best_metric = 0;      // objective metric of `config`
  std::uint64_t baseline_metric = 0;  // objective metric at -O0
};

class ResultCache {
 public:
  ResultCache() = default;

  /// Wrap an existing knowledge base (e.g. loaded from disk) in-memory.
  /// Non-service records are preserved and round-trip through save().
  explicit ResultCache(kb::KnowledgeBase base) : base_(std::move(base)) {}

  /// Load `path` as a legacy CSV KB into an in-memory cache, tolerating a
  /// missing file (fresh cache). Returns nullopt only when the file
  /// exists but is not a valid KB.
  static std::optional<ResultCache> open(const std::string& path);

  /// Open a durable store at `path` (a directory; created if missing),
  /// running crash recovery. A legacy CSV *file* at `path` is migrated in
  /// place: parsed, imported into a new store directory of the same name.
  /// Returns nullopt when the path holds neither a store nor a valid KB.
  static std::optional<ResultCache> open_durable(
      const std::string& path, kbstore::Options opts = {},
      kbstore::RecoveryInfo* info = nullptr);

  bool durable() const { return store_ != nullptr; }

  /// The canonical cache key for a module fingerprint + objective.
  static std::string key(std::uint64_t fingerprint,
                         search::Objective objective);

  std::optional<CachedResult> lookup(const std::string& key,
                                     const std::string& machine) const;

  /// The durable-mode lookup against an explicit store — the same
  /// svc-best/svc-base record pairing lookup() uses, exposed so a
  /// replication follower can serve warm hits straight from its
  /// replicated kbstore without constructing a ResultCache around it.
  static std::optional<CachedResult> lookup_store(const kbstore::Store& store,
                                                  const std::string& key,
                                                  const std::string& machine);

  /// Keep the better of the stored and offered result for `key` (lower
  /// metric wins; first write always stored).
  void store(const std::string& key, const std::string& machine,
             const CachedResult& result);

  /// Export the cache as a legacy CSV knowledge base at `path`.
  bool save(const std::string& path) const;

  /// Durable mode: group-commit barrier (all stores durable on return).
  /// In-memory mode: no-op, true.
  bool sync() const;

  kb::KnowledgeBase kb() const;
  std::size_t size() const;

 private:
  kb::KnowledgeBase base_;                  // in-memory mode
  std::shared_ptr<kbstore::Store> store_;   // durable mode when non-null
};

}  // namespace ilc::svc
