// The persistent result cache of the tuning service: a thin layer over
// kb::KnowledgeBase that keeps exactly two records per cache key (the
// tuned best and the -O0 baseline, both honest ExperimentRecords in the
// standard format), so a service restarted against the same KB file
// answers previously-tuned requests without a single simulation.
//
// Keys identify *code*, not names: module fingerprint + objective, with
// the machine carried in the record's machine column. Two requests whose
// modules optimize identically share an entry regardless of how the
// client labeled them.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "kb/knowledge_base.hpp"
#include "search/strategies.hpp"

namespace ilc::svc {

/// What the cache remembers about one (module, machine, objective) key.
struct CachedResult {
  std::string config;                 // best pass sequence, textual
  std::uint64_t best_metric = 0;      // objective metric of `config`
  std::uint64_t baseline_metric = 0;  // objective metric at -O0
};

class ResultCache {
 public:
  ResultCache() = default;

  /// Wrap an existing knowledge base (e.g. loaded from disk). Non-service
  /// records are preserved and round-trip through save().
  explicit ResultCache(kb::KnowledgeBase base) : base_(std::move(base)) {}

  /// Load `path`, tolerating a missing file (fresh cache). Returns
  /// nullopt only when the file exists but is not a valid KB.
  static std::optional<ResultCache> open(const std::string& path);

  /// The canonical cache key for a module fingerprint + objective.
  static std::string key(std::uint64_t fingerprint,
                         search::Objective objective);

  std::optional<CachedResult> lookup(const std::string& key,
                                     const std::string& machine) const;

  /// Keep the better of the stored and offered result for `key` (lower
  /// metric wins; first write always stored).
  void store(const std::string& key, const std::string& machine,
             const CachedResult& result);

  bool save(const std::string& path) const { return base_.save(path); }

  const kb::KnowledgeBase& kb() const { return base_; }
  std::size_t size() const { return base_.size(); }

 private:
  kb::KnowledgeBase base_;
};

}  // namespace ilc::svc
