#include "svc/protocol.hpp"

#include <charconv>
#include <sstream>

#include "support/string_utils.hpp"

namespace ilc::svc {

const char* strategy_name(Strategy s) {
  switch (s) {
    case Strategy::Random: return "random";
    case Strategy::Greedy: return "greedy";
    case Strategy::Genetic: return "genetic";
  }
  return "?";
}

const char* source_name(Source s) {
  switch (s) {
    case Source::Error: return "error";
    case Source::WarmCache: return "warm";
    case Source::Search: return "search";
    case Source::Coalesced: return "coalesced";
    case Source::TimedOut: return "timeout";
    case Source::Rejected: return "rejected";
    case Source::StaleCache: return "stale";
    case Source::Follower: return "follower";
  }
  return "?";
}

namespace {

Command invalid(const std::string& why) {
  Command c;
  c.kind = Command::Kind::Invalid;
  c.error = why;
  return c;
}

bool parse_u64_field(const std::string& s, std::uint64_t& out) {
  const char* last = s.data() + s.size();
  const auto [ptr, ec] = std::from_chars(s.data(), last, out);
  return ec == std::errc() && ptr == last && !s.empty();
}

bool parse_int_field(const std::string& s, int& out) {
  const char* last = s.data() + s.size();
  const auto [ptr, ec] = std::from_chars(s.data(), last, out);
  return ec == std::errc() && ptr == last && !s.empty();
}

/// True when `s` holds an embedded control character (anything below
/// 0x20, or DEL). The line protocol is text: control bytes smuggled into
/// option values would corrupt response lines and KB exports.
bool has_control_chars(const std::string& s) {
  for (const char c : s) {
    const unsigned char u = static_cast<unsigned char>(c);
    if (u < 0x20 || u == 0x7f) return true;
  }
  return false;
}

/// Apply one key=value option to a request; empty return = accepted.
std::string apply_option(TuningRequest& req, const std::string& key,
                         const std::string& value) {
  if (has_control_chars(value))
    return "control character in value of '" + key + "'";
  if (key == "machine") {
    if (value == "amd") req.machine = sim::amd_like();
    else if (value == "c6713") req.machine = sim::c6713_like();
    else return "unknown machine '" + value + "' (amd|c6713)";
  } else if (key == "budget") {
    std::uint64_t v = 0;
    if (!parse_u64_field(value, v)) return "bad budget '" + value + "'";
    req.budget = static_cast<unsigned>(v);
  } else if (key == "objective") {
    if (value == "cycles") req.objective = search::Objective::Cycles;
    else if (value == "size") req.objective = search::Objective::CodeSize;
    else if (value == "pareto") req.objective = search::Objective::Pareto;
    else return "unknown objective '" + value + "' (cycles|size|pareto)";
  } else if (key == "seeding") {
    if (value == "on") req.seeding = true;
    else if (value == "off") req.seeding = false;
    else return "bad seeding '" + value + "' (on|off)";
  } else if (key == "strategy") {
    if (value == "random") req.strategy = Strategy::Random;
    else if (value == "greedy") req.strategy = Strategy::Greedy;
    else if (value == "genetic") req.strategy = Strategy::Genetic;
    else return "unknown strategy '" + value + "'";
  } else if (key == "priority") {
    if (!parse_int_field(value, req.priority))
      return "bad priority '" + value + "'";
  } else if (key == "seed") {
    if (!parse_u64_field(value, req.seed)) return "bad seed '" + value + "'";
  } else if (key == "timeout_ms") {
    if (!parse_u64_field(value, req.timeout_ms))
      return "bad timeout_ms '" + value + "'";
  } else {
    return "unknown option '" + key + "'";
  }
  return "";
}

}  // namespace

Command parse_command(const std::string& line) {
  if (line.size() > kMaxRequestLine)
    return invalid("request line too long (" + std::to_string(line.size()) +
                   " bytes, max " + std::to_string(kMaxRequestLine) + ")");
  const std::string text = support::trim(line);
  if (text.empty() || text[0] == '#') return Command{};

  const std::vector<std::string> words = support::split_ws(text);
  Command c;

  if (words[0] == "tune") {
    if (words.size() < 2) return invalid("tune: missing program name");
    c.kind = Command::Kind::Tune;
    c.request.program = words[1];
    for (std::size_t i = 2; i < words.size(); ++i) {
      const auto eq = words[i].find('=');
      if (eq == std::string::npos)
        return invalid("tune: expected key=value, got '" + words[i] + "'");
      const std::string err = apply_option(c.request, words[i].substr(0, eq),
                                           words[i].substr(eq + 1));
      if (!err.empty()) return invalid("tune: " + err);
    }
    return c;
  }
  if (words[0] == "module") {
    if (words.size() != 3) return invalid("module: want `module <name> <n>`");
    std::uint64_t n = 0;
    if (!parse_u64_field(words[2], n))
      return invalid("module: bad line count '" + words[2] + "'");
    c.kind = Command::Kind::Module;
    c.module_name = words[1];
    c.module_lines = static_cast<std::size_t>(n);
    return c;
  }
  if (words[0] == "metrics") {
    c.kind = Command::Kind::Metrics;
    return c;
  }
  if (words[0] == "save") {
    c.kind = Command::Kind::Save;
    if (words.size() > 1) c.path = words[1];
    return c;
  }
  if (words[0] == "ping") {
    c.kind = Command::Kind::Ping;
    return c;
  }
  if (words[0] == "quit") {
    c.kind = Command::Kind::Quit;
    return c;
  }
  return invalid("unknown command '" + words[0] + "'");
}

namespace {

/// Escape a string for emission inside the protocol's double quotes:
/// backslashes and quotes get a backslash, control characters become
/// spaces (response lines must stay single lines).
std::string escape_quoted(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    const unsigned char u = static_cast<unsigned char>(c);
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (u < 0x20 || u == 0x7f) {
      out += ' ';
    } else {
      out += c;
    }
  }
  return out;
}

/// Error text travels unquoted: just keep it on one line.
std::string sanitize_line(const std::string& s) {
  std::string out = s;
  for (char& c : out) {
    const unsigned char u = static_cast<unsigned char>(c);
    if (u < 0x20 || u == 0x7f) c = ' ';
  }
  return out;
}

}  // namespace

std::string format_response(const TuningResponse& r) {
  std::ostringstream os;
  if (!r.ok) {
    os << "err "
       << (r.error.empty() ? "request failed" : sanitize_line(r.error));
    return os.str();
  }
  os << "ok program=" << r.program << " source=" << source_name(r.source)
     << " config=\"" << escape_quoted(r.config)
     << "\" base=" << r.baseline_metric << " best=" << r.best_metric;
  os.precision(3);
  os << " speedup=" << std::fixed << r.speedup << " sims=" << r.simulations
     << " latency_us=" << r.latency_us;
  if (r.pareto_front > 0) {
    // Pareto-objective extras, appended so single-objective clients that
    // parse positionally keep working.
    os << " front=" << r.pareto_front << " hv=" << std::fixed
       << r.hypervolume;
  }
  return os.str();
}

std::string format_metrics(const Metrics& m) {
  std::ostringstream os;
  os << "metrics requests=" << m.requests << " warm_hits=" << m.warm_hits
     << " coalesced=" << m.coalesced << " searches=" << m.searches
     << " errors=" << m.errors << " rejected=" << m.rejected
     << " timed_out=" << m.timed_out << " shed=" << m.shed
     << " persist_errors=" << m.persist_errors << " queued=" << m.queued
     << " in_flight=" << m.in_flight << " simulations=" << m.simulations
     << " p50_latency_us=" << m.p50_latency_us
     << " p95_latency_us=" << m.p95_latency_us;
  return os.str();
}

}  // namespace ilc::svc
