// The tuning service — the persistent serving layer over the batch
// machinery (paper Fig. 1 as a long-running system). Requests are
// scheduled on a bounded worker pool through a priority queue with FIFO
// tie-breaking; concurrent duplicates are coalesced into a single search
// (single-flight, keyed by module fingerprint + machine + objective); and
// completed results persist incrementally through a kbstore-backed cache
// (WAL + snapshots + crash recovery), so a service restarted — or crashed
// and restarted — against the same store answers repeat queries with zero
// simulations.
//
// Request lifecycle — the service's guarantee is that **every submitted
// request resolves exactly once, in bounded time, on every path**:
//   submit() -> [warm KB hit -> ready future]
//            -> [duplicate in flight -> share that future (coalesced)]
//            -> [queue full -> stale in-memory result (shed) or rejected]
//            -> [enqueue -> worker pops highest-priority job
//                -> deadline already passed? resolve TimedOut, no search
//                -> search -> write best back to KB (+autosave)
//                -> resolve future]
// A worker retires the job through an RAII completion guard: success,
// search failure, persist failure (fault-injectable via the
// "svc.persist" failpoint), non-std exceptions, and shutdown all erase
// the in-flight entry and set the promise — a client can hang only by
// never being scheduled, which bounded admission and deadlines prevent.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <queue>
#include <string>
#include <unordered_map>
#include <vector>

#include "search/evaluator.hpp"
#include "search/seedbank.hpp"
#include "svc/cache.hpp"
#include "svc/metrics.hpp"
#include "svc/request.hpp"
#include "support/thread_pool.hpp"

namespace ilc::svc {

class TuningService {
 public:
  struct Options {
    std::size_t workers = 2;
    /// Evaluation fan-out *within* one search (random/genetic candidate
    /// batches). Distinct from `workers`, which is how many requests run
    /// at once. Search results are deterministic at any value.
    unsigned search_workers = 1;
    /// Location of the persistent KB store (a kbstore directory, created
    /// on first use; a legacy CSV KB file here is migrated in place).
    /// Empty keeps the cache in memory only.
    std::string kb_path;
    /// Make each completed search durable immediately (flush the store's
    /// WAL per write). When false, writes group-commit in batches and are
    /// flushed on save()/shutdown.
    bool autosave = true;
    /// Bounded admission: maximum queued (not yet running) jobs. A submit
    /// that finds the queue full is answered from the stale result map
    /// when possible (Source::StaleCache) and load-shed otherwise
    /// (Source::Rejected). 0 = unbounded.
    std::size_t max_queue = 256;
    /// Cap on cached evaluators (shared per fingerprint+machine); least
    /// recently used are evicted beyond it, so a long-running service
    /// tuning many distinct modules holds bounded memory. 0 = unbounded.
    std::size_t evaluator_cache = 64;
    /// Legacy-CSV knowledge base whose "sequence" records seed a
    /// search::SeedBank at startup (clustered KB seeding, ROADMAP item 3).
    /// Requests opting in with seeding=on warm-start from the cluster
    /// nearest to their module's static features. Empty = no seed bank;
    /// an unreadable file throws at construction.
    std::string seed_kb_path;

    // --- fingerprint sharding & replication (ilc::repl) -------------------
    /// When shard_count > 1 this instance owns only the fingerprints with
    /// fp % shard_count == shard_index; a request for any other
    /// fingerprint is refused with "wrong shard: owner=<k> shards=<n>" so
    /// a misrouted client learns where to go instead of polluting this
    /// shard's KB. 0 (and 1) = unsharded.
    std::size_t shard_index = 0;
    std::size_t shard_count = 0;
    /// Serve only from caches; never run a search or write the KB. The
    /// mode of a replication follower: a miss is an error ("read-only
    /// follower"), directing the client at the shard's primary.
    bool read_only = false;
    /// Warm-hit fallback consulted after the service's own cache misses —
    /// a follower process points this at its replicated store (see
    /// ResultCache::lookup_store). Hits answer as Source::Follower.
    /// Called with mu_ held; must not call back into the service.
    std::function<std::optional<CachedResult>(const std::string& cache_key,
                                              const std::string& machine)>
        follower_lookup;
  };

  /// Loads Options::kb_path when present; an unparsable file throws
  /// support::CheckError rather than silently starting cold.
  explicit TuningService(Options opts);
  ~TuningService();  // drains all queued work

  TuningService(const TuningService&) = delete;
  TuningService& operator=(const TuningService&) = delete;

  /// Completion hook for transports that cannot block on a future (the
  /// epoll front-end): invoked exactly once per submit that registered
  /// one, with the same response the future resolves to. Runs on the
  /// worker thread that retires the request — or inline on the submitting
  /// thread for requests answered without scheduling (warm hit, stale,
  /// rejection, malformed input). Must not block; exceptions are swallowed
  /// so a throwing callback can never strand the request lifecycle.
  using ResponseCallback = std::function<void(const TuningResponse&)>;

  /// Schedule a request. The future is shared: duplicates of an in-flight
  /// request receive the same one. Never throws on bad input — malformed
  /// requests resolve to a response with ok=false. `on_done`, when
  /// non-null, fires exactly once (see ResponseCallback); a callback
  /// attached to a request that coalesces onto an in-flight duplicate
  /// fires when that flight resolves.
  std::shared_future<TuningResponse> submit(TuningRequest req,
                                            ResponseCallback on_done = nullptr);

  /// submit() + wait. Convenience for sequential clients.
  TuningResponse tune(TuningRequest req);

  /// Block until no request is queued or running.
  void drain();

  Metrics metrics() const { return metrics_.snapshot(); }
  /// Programs clustered into the seed bank (0 without seed_kb_path).
  std::size_t seed_bank_programs() const { return seed_bank_.num_programs(); }
  /// Evaluators currently cached (bounded by Options::evaluator_cache).
  std::size_t evaluator_count() const;
  /// Make the KB durable at Options::kb_path: syncs the store's WAL
  /// (durable mode) or writes the CSV file. False when none configured.
  bool save() const;
  /// Export the KB to an explicit path in the legacy CSV format.
  bool save_to(const std::string& path) const;
  std::size_t kb_size() const;
  std::size_t workers() const { return pool_.size(); }

  /// Shard identity, for the protocol's `ping` reply (cluster health
  /// probes confirm they reached the endpoint they think they probed).
  std::size_t shard_index() const { return opts_.shard_index; }
  std::size_t shard_count() const { return opts_.shard_count; }
  bool read_only() const { return opts_.read_only; }

 private:
  struct Job;
  class Completion;
  /// Max-heap order: higher priority first, then FIFO by sequence number.
  struct JobOrder {
    bool operator()(const std::shared_ptr<Job>& a,
                    const std::shared_ptr<Job>& b) const;
  };
  using Clock = std::chrono::steady_clock;

  std::shared_future<TuningResponse> ready_response(TuningResponse r);
  void run_one();
  TuningResponse execute(const Job& job);
  /// Fetch-or-create the job's evaluator, bumping it in the LRU order and
  /// evicting beyond Options::evaluator_cache. Takes mu_.
  std::shared_ptr<search::Evaluator> evaluator_for(const Job& job);
  /// Remember a computed result for overload serving. Caller holds mu_.
  void remember_stale_locked(const std::string& flight_key,
                             const TuningResponse& resp);

  Options opts_;
  /// Immutable after construction; read concurrently by workers without
  /// locking (assign/seeds_for/estimator_for are const and pure).
  search::SeedBank seed_bank_;

  mutable std::mutex mu_;  // guards cache_, queue_, inflight_, evaluators_
  ResultCache cache_;
  std::uint64_t next_seq_ = 0;
  std::priority_queue<std::shared_ptr<Job>, std::vector<std::shared_ptr<Job>>,
                      JobOrder> queue_;
  std::unordered_map<std::string, std::shared_ptr<Job>> inflight_;
  /// Evaluators are shared across requests keyed by module fingerprint +
  /// machine, so repeat searches reuse memoized simulations. LRU-bounded
  /// by Options::evaluator_cache; a running search keeps its (possibly
  /// evicted) evaluator alive through its shared_ptr.
  struct EvalSlot {
    std::shared_ptr<search::Evaluator> eval;
    std::list<std::string>::iterator lru_it;
  };
  std::unordered_map<std::string, EvalSlot> evaluators_;
  std::list<std::string> eval_lru_;  // front = most recently used
  /// Last computed result per flight key, kept in memory even when the
  /// KB persist failed — the overload path serves these as
  /// Source::StaleCache instead of shedding. Bounded alongside the
  /// evaluator cache (same cap, same LRU discipline).
  struct StaleSlot {
    CachedResult result;
    std::list<std::string>::iterator lru_it;
  };
  std::unordered_map<std::string, StaleSlot> stale_;
  std::list<std::string> stale_lru_;

  MetricsCollector metrics_;

  // Destroyed first (reverse member order): the pool drains its queue on
  // destruction, and its jobs touch every field above.
  support::ThreadPool pool_;
};

}  // namespace ilc::svc
