// The tuning service — the persistent serving layer over the batch
// machinery (paper Fig. 1 as a long-running system). Requests are
// scheduled on a bounded worker pool through a priority queue with FIFO
// tie-breaking; concurrent duplicates are coalesced into a single search
// (single-flight, keyed by module fingerprint + machine + objective); and
// completed results persist incrementally through a kbstore-backed cache
// (WAL + snapshots + crash recovery), so a service restarted — or crashed
// and restarted — against the same store answers repeat queries with zero
// simulations.
//
// Request lifecycle:
//   submit() -> [warm KB hit -> ready future]
//            -> [duplicate in flight -> share that future (coalesced)]
//            -> [enqueue -> worker pops highest-priority job -> search
//                -> write best back to KB (+autosave) -> resolve future]
#pragma once

#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <queue>
#include <string>
#include <unordered_map>
#include <vector>

#include "search/evaluator.hpp"
#include "svc/cache.hpp"
#include "svc/metrics.hpp"
#include "svc/request.hpp"
#include "support/thread_pool.hpp"

namespace ilc::svc {

class TuningService {
 public:
  struct Options {
    std::size_t workers = 2;
    /// Evaluation fan-out *within* one search (random/genetic candidate
    /// batches). Distinct from `workers`, which is how many requests run
    /// at once. Search results are deterministic at any value.
    unsigned search_workers = 1;
    /// Location of the persistent KB store (a kbstore directory, created
    /// on first use; a legacy CSV KB file here is migrated in place).
    /// Empty keeps the cache in memory only.
    std::string kb_path;
    /// Make each completed search durable immediately (flush the store's
    /// WAL per write). When false, writes group-commit in batches and are
    /// flushed on save()/shutdown.
    bool autosave = true;
  };

  /// Loads Options::kb_path when present; an unparsable file throws
  /// support::CheckError rather than silently starting cold.
  explicit TuningService(Options opts);
  ~TuningService();  // drains all queued work

  TuningService(const TuningService&) = delete;
  TuningService& operator=(const TuningService&) = delete;

  /// Schedule a request. The future is shared: duplicates of an in-flight
  /// request receive the same one. Never throws on bad input — malformed
  /// requests resolve to a response with ok=false.
  std::shared_future<TuningResponse> submit(TuningRequest req);

  /// submit() + wait. Convenience for sequential clients.
  TuningResponse tune(TuningRequest req);

  /// Block until no request is queued or running.
  void drain();

  Metrics metrics() const { return metrics_.snapshot(); }
  /// Make the KB durable at Options::kb_path: syncs the store's WAL
  /// (durable mode) or writes the CSV file. False when none configured.
  bool save() const;
  /// Export the KB to an explicit path in the legacy CSV format.
  bool save_to(const std::string& path) const;
  std::size_t kb_size() const;
  std::size_t workers() const { return pool_.size(); }

 private:
  struct Job;
  /// Max-heap order: higher priority first, then FIFO by sequence number.
  struct JobOrder {
    bool operator()(const std::shared_ptr<Job>& a,
                    const std::shared_ptr<Job>& b) const;
  };
  using Clock = std::chrono::steady_clock;

  std::shared_future<TuningResponse> ready_response(TuningResponse r);
  void run_one();
  TuningResponse execute(const Job& job);

  Options opts_;

  mutable std::mutex mu_;  // guards cache_, queue_, inflight_, evaluators_
  ResultCache cache_;
  std::uint64_t next_seq_ = 0;
  std::priority_queue<std::shared_ptr<Job>, std::vector<std::shared_ptr<Job>>,
                      JobOrder> queue_;
  std::unordered_map<std::string, std::shared_ptr<Job>> inflight_;
  /// Evaluators are shared across requests keyed by module fingerprint +
  /// machine, so repeat searches reuse memoized simulations.
  std::unordered_map<std::string, std::shared_ptr<search::Evaluator>>
      evaluators_;

  MetricsCollector metrics_;

  // Destroyed first (reverse member order): the pool drains its queue on
  // destruction, and its jobs touch every field above.
  support::ThreadPool pool_;
};

}  // namespace ilc::svc
