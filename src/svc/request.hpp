// Request/response vocabulary of the tuning service (paper Fig. 1 run as a
// persistent system): a client asks "how should I optimize this program?"
// by naming a suite workload or shipping inline IR text, together with the
// machine to tune for, a search budget, and an objective. The response is
// the best configuration the service knows — found by a fresh search, by
// joining a search already in flight, or straight from the knowledge base.
#pragma once

#include <cstdint>
#include <string>

#include "search/strategies.hpp"
#include "sim/machine.hpp"

namespace ilc::svc {

/// Which search strategy a miss should run.
enum class Strategy { Random, Greedy, Genetic };

const char* strategy_name(Strategy s);

struct TuningRequest {
  /// Workload name (wl::make_workload) when ir_text is empty; otherwise a
  /// label for the inline module.
  std::string program;
  /// Optional inline IR in the textual form of ir/printer.hpp.
  std::string ir_text;

  sim::MachineConfig machine;
  unsigned budget = 20;  // evaluations a cache miss may spend
  search::Objective objective = search::Objective::Cycles;
  Strategy strategy = Strategy::Random;
  /// Warm-start the search from the service's seed bank (clustered KB
  /// seeding + learned estimator pre-filter). Ignored when the service
  /// has no seed bank configured, or for Strategy::Greedy.
  bool seeding = false;

  /// Higher priorities are scheduled first; equal priorities run FIFO.
  int priority = 0;
  /// Search RNG seed — responses are deterministic in (request, KB state).
  std::uint64_t seed = 2008;
  /// Deadline for the whole request, measured from submit(). 0 = none.
  /// A job whose deadline passes while it waits in the queue resolves as
  /// Source::TimedOut without running a search.
  std::uint64_t timeout_ms = 0;

  TuningRequest() : machine(sim::amd_like()) {}
};

/// How a response was produced.
enum class Source {
  Error,      // request malformed, search failed, or result not persisted
  WarmCache,  // answered from the knowledge base, zero simulations
  Search,     // this request ran the search
  Coalesced,  // joined an identical in-flight request's search
  TimedOut,   // deadline expired before a worker could run the search
  Rejected,   // load shed: admission queue full, nothing cached to serve
  StaleCache, // overload fallback: last known in-memory result, possibly
              // not durable (e.g. computed but its KB persist failed)
  Follower,   // answered from a replicated follower KB (read-only: the
              // owning shard runs the searches, this process mirrors them)
};

const char* source_name(Source s);

struct TuningResponse {
  bool ok = false;
  std::string error;  // set when !ok

  std::string program;
  std::string config;  // best pass sequence, textual form
  std::uint64_t baseline_metric = 0;  // objective metric at -O0
  std::uint64_t best_metric = 0;      // objective metric of `config`
  double speedup = 0.0;               // baseline / best

  Source source = Source::Error;
  std::size_t simulations = 0;  // real simulator runs this request caused
  std::uint64_t latency_us = 0;

  /// Pareto-objective extras (zero unless the request ran with
  /// objective=pareto): archive size and the hypervolume dominated with
  /// the -O0 measurement as reference point.
  std::size_t pareto_front = 0;
  double hypervolume = 0.0;
};

}  // namespace ilc::svc
