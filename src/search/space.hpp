// The Fig. 2 optimization-sequence space: fixed-length sequences over the
// 13 sequence-space passes with the paper's side constraint that loop
// unrolling (any factor) appears at most once.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "opt/pass.hpp"
#include "support/rng.hpp"

namespace ilc::search {

struct SequenceSpace {
  std::vector<opt::PassId> passes = opt::sequence_space();
  unsigned length = 5;
  bool unroll_at_most_once = true;

  /// Does `seq` satisfy the space's constraints?
  bool valid(const std::vector<opt::PassId>& seq) const;

  /// Number of valid sequences.
  std::uint64_t count() const;

  /// Uniform sample over valid sequences (rejection sampling).
  std::vector<opt::PassId> sample(support::Rng& rng) const;

  /// Sequence at `index` in the unconstrained odometer enumeration of
  /// passes^length. Use with valid() to enumerate/filter.
  std::vector<opt::PassId> at_raw(std::uint64_t index) const;
  std::uint64_t raw_count() const;
};

/// Human-readable form: "constprop,licm,unroll2,...".
std::string sequence_to_string(const std::vector<opt::PassId>& seq);
std::vector<opt::PassId> sequence_from_string(const std::string& text);

}  // namespace ilc::search
