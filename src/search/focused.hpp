// The FOCUSSED search model (paper Section III-A, after Agakov et al.
// CGO'06): learn, from a knowledge base of prior searches on *other*
// programs, where the good regions of the sequence space lie, then bias
// sampling into those regions for a new program.
//
// Per training program we fit two generative models over its best
// sequences: an IID per-position distribution and a first-order Markov
// chain (both Laplace-smoothed). At prediction time the training program
// nearest in normalized static-feature space is selected (1-NN, as in the
// original paper) and its models drive sampling. log_prob() exposes the
// model density, which the Fig. 2a bench thresholds to draw the
// "predicted good region" contours.
#pragma once

#include <string>
#include <vector>

#include "features/features.hpp"
#include "search/space.hpp"
#include "search/strategies.hpp"
#include "support/rng.hpp"

namespace ilc::search {

/// Prior-search evidence for one training program.
struct ProgramSearchData {
  std::string program;
  std::vector<double> features;  // static features (unnormalized)
  std::vector<std::vector<opt::PassId>> good_seqs;  // its top sequences
};

enum class FocusedKind { Iid, Markov };

class FocusedModel {
 public:
  /// `mixture` = number of nearest training programs blended (inverse-
  /// distance weighted). 1 reproduces the original 1-NN model selection.
  FocusedModel(std::vector<ProgramSearchData> training, SequenceSpace space,
               FocusedKind kind = FocusedKind::Markov, unsigned mixture = 3);

  /// Select the per-program component models nearest to `features`.
  void set_target(const std::vector<double>& features);
  /// The nearest (highest-weight) training program.
  const std::string& selected_program() const;

  /// Sample a valid sequence from the selected model.
  std::vector<opt::PassId> sample(support::Rng& rng) const;

  /// Model log-density of a sequence under the selected program's model.
  double log_prob(const std::vector<opt::PassId>& seq) const;

  const SequenceSpace& space() const { return space_; }

 private:
  struct ProgramModel {
    std::string program;
    std::vector<double> scaled_features;
    std::vector<double> iid;                  // [pass] probabilities
    std::vector<std::vector<double>> markov;  // [prev][pass]
  };

  std::size_t pass_index(opt::PassId id) const;
  double component_log_prob(const ProgramModel& m,
                            const std::vector<opt::PassId>& seq) const;

  SequenceSpace space_;
  FocusedKind kind_;
  unsigned mixture_;
  feat::Scaler scaler_;
  std::vector<ProgramModel> models_;
  std::vector<std::pair<std::size_t, double>> active_;  // (model, weight)
  bool target_set_ = false;
};

/// Run a model-biased search: draw `budget` candidates from the focused
/// model (sequentially, preserving the RNG stream) and evaluate them —
/// concurrently when workers > 1 — committing results in sample order, so
/// fixed-seed traces are identical at any worker count. The model must
/// have a target set.
SearchTrace focused_search(Evaluator& eval, const FocusedModel& model,
                           support::Rng& rng, unsigned budget,
                           Objective obj = Objective::Cycles,
                           unsigned workers = 1);

/// Seeded variant: evaluate the cluster's seed sequences first (skipping
/// any that the space rejects), then fill the remaining budget from the
/// focused model.
SearchTrace focused_search(Evaluator& eval, const FocusedModel& model,
                           const Seeding& seeding, support::Rng& rng,
                           unsigned budget, Objective obj = Objective::Cycles,
                           unsigned workers = 1);

}  // namespace ilc::search
