#include "search/strategies.hpp"

#include <algorithm>
#include <memory>
#include <unordered_set>
#include <utility>

#include "obs/metrics.hpp"
#include "search/seedbank.hpp"
#include "support/assert.hpp"
#include "support/thread_pool.hpp"

namespace ilc::search {

namespace {

obs::Counter& c_estimator_skipped() {
  static obs::Counter c =
      obs::Registry::instance().counter("search.estimator.skipped");
  return c;
}

/// Evaluate a pre-sampled candidate batch and commit it to the trace in
/// submission order. The evaluation itself consumes no RNG, so fanning it
/// out over the pool cannot perturb a fixed-seed run.
void eval_batch(Evaluator& eval, const std::vector<std::vector<opt::PassId>>& seqs,
                Objective obj, support::ThreadPool* pool, SearchTrace& trace) {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> metrics(seqs.size());
  support::parallel_for(pool, 0, seqs.size(), [&](std::size_t i) {
    const EvalResult r = eval.eval_sequence(seqs[i]);
    metrics[i] = {r.cycles, r.code_size};
  });
  for (std::size_t i = 0; i < seqs.size(); ++i)
    trace.record(seqs[i], metrics[i].first, metrics[i].second, obj);
}

std::unique_ptr<support::ThreadPool> make_pool(unsigned workers) {
  if (workers <= 1) return nullptr;
  return std::make_unique<support::ThreadPool>(workers);
}

/// Keep the `want` candidates with the lowest predicted metric, in their
/// original (stable) order; count the rest as estimator skips. Pure and
/// RNG-free, so it never perturbs fixed-seed determinism.
std::vector<std::vector<opt::PassId>> prefilter(
    const std::vector<std::vector<opt::PassId>>& cands,
    const PerfEstimator& est, std::size_t want) {
  if (cands.size() <= want) return cands;
  std::vector<std::size_t> idx(cands.size());
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  std::vector<double> pred(cands.size());
  for (std::size_t i = 0; i < cands.size(); ++i) pred[i] = est.predict(cands[i]);
  std::stable_sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
    return pred[a] < pred[b];
  });
  idx.resize(want);
  std::sort(idx.begin(), idx.end());  // preserve submission order
  std::vector<std::vector<opt::PassId>> out;
  out.reserve(want);
  for (std::size_t i : idx) out.push_back(cands[i]);
  c_estimator_skipped().add(cands.size() - want);
  return out;
}

}  // namespace

void SearchTrace::record(const std::vector<opt::PassId>& seq,
                         std::uint64_t metric) {
  ++evaluations;
  if (metric < best_metric) {
    best_metric = metric;
    best_seq = seq;
  }
  best_so_far.push_back(best_metric);
}

void SearchTrace::record(const std::vector<opt::PassId>& seq,
                         std::uint64_t cycles, std::uint64_t code_size,
                         Objective obj) {
  if (obj == Objective::Pareto) pareto.insert({seq, cycles, code_size});
  record(seq, obj == Objective::CodeSize ? code_size : cycles);
}

SearchTrace random_search(Evaluator& eval, const SequenceSpace& space,
                          support::Rng& rng, unsigned budget, Objective obj,
                          unsigned workers) {
  SearchTrace trace;
  std::vector<std::vector<opt::PassId>> seqs(budget);
  for (auto& seq : seqs) seq = space.sample(rng);
  eval_batch(eval, seqs, obj, make_pool(workers).get(), trace);
  return trace;
}

SearchTrace seeded_random_search(Evaluator& eval, const SequenceSpace& space,
                                 const Seeding& seeding, support::Rng& rng,
                                 unsigned budget, Objective obj,
                                 unsigned workers) {
  SearchTrace trace;
  std::vector<std::vector<opt::PassId>> seqs;
  seqs.reserve(budget);
  for (const auto& seed : seeding.seeds) {
    if (seqs.size() >= budget) break;
    if (space.valid(seed)) seqs.push_back(seed);
  }
  const std::size_t tail = budget - seqs.size();
  if (tail > 0) {
    const bool filter = seeding.estimator != nullptr && seeding.oversample > 1;
    const std::size_t draw = filter ? tail * seeding.oversample : tail;
    std::vector<std::vector<opt::PassId>> cands(draw);
    for (auto& seq : cands) seq = space.sample(rng);
    if (filter) cands = prefilter(cands, *seeding.estimator, tail);
    for (auto& seq : cands) seqs.push_back(std::move(seq));
  }
  eval_batch(eval, seqs, obj, make_pool(workers).get(), trace);
  return trace;
}

SearchTrace generator_search(
    Evaluator& eval, const std::function<std::vector<opt::PassId>()>& gen,
    unsigned budget, Objective obj, unsigned workers) {
  SearchTrace trace;
  std::vector<std::vector<opt::PassId>> seqs(budget);
  for (auto& seq : seqs) seq = gen();
  eval_batch(eval, seqs, obj, make_pool(workers).get(), trace);
  return trace;
}

SearchTrace greedy_search(Evaluator& eval, const SequenceSpace& space,
                          support::Rng& rng, unsigned budget, Objective obj) {
  SearchTrace trace;
  std::vector<opt::PassId> current = space.sample(rng);
  std::uint64_t current_metric =
      metric_of(eval.eval_sequence(current), obj);
  trace.record(current, current_metric);
  unsigned stuck = 0;

  while (trace.evaluations < budget) {
    // Mutate one position to a random (valid) alternative.
    std::vector<opt::PassId> cand = current;
    for (int tries = 0; tries < 32; ++tries) {
      cand = current;
      const std::size_t pos = rng.next_below(space.length);
      cand[pos] = space.passes[rng.next_below(space.passes.size())];
      if (space.valid(cand)) break;
    }
    if (!space.valid(cand)) cand = space.sample(rng);

    const std::uint64_t m = metric_of(eval.eval_sequence(cand), obj);
    trace.record(cand, m);
    if (m < current_metric) {
      current = cand;
      current_metric = m;
      stuck = 0;
    } else if (++stuck >= 2 * space.length * space.passes.size()) {
      current = space.sample(rng);  // random restart
      if (trace.evaluations >= budget) break;
      current_metric = metric_of(eval.eval_sequence(current), obj);
      trace.record(current, current_metric);
      stuck = 0;
    }
  }
  return trace;
}

std::vector<SpacePoint> enumerate_space(Evaluator& eval,
                                        const SequenceSpace& space,
                                        support::Rng& rng,
                                        std::uint64_t budget) {
  std::vector<SpacePoint> points;
  const std::uint64_t raw = space.raw_count();

  auto consider = [&](std::uint64_t raw_index) {
    const auto seq = space.at_raw(raw_index);
    if (!space.valid(seq)) return;
    SpacePoint pt;
    pt.seq = seq;
    pt.cycles = eval.eval_sequence(seq).cycles;
    points.push_back(std::move(pt));
  };

  if (space.count() <= budget) {
    for (std::uint64_t i = 0; i < raw; ++i) consider(i);
  } else {
    std::unordered_set<std::uint64_t> chosen;
    while (points.size() < budget) {
      const std::uint64_t i = rng.next_below(raw);
      if (!chosen.insert(i).second) continue;
      consider(i);
    }
  }
  return points;
}

std::vector<FlagPoint> flag_search(Evaluator& eval, support::Rng& rng,
                                   unsigned budget) {
  std::vector<FlagPoint> out;
  std::unordered_set<std::uint32_t> seen;

  auto consider = [&](const opt::OptFlags& f) {
    if (!seen.insert(f.encode()).second) return;
    out.push_back({f, eval.eval_flags(f)});
  };

  consider(opt::o0_flags());
  consider(opt::fast_flags());
  {
    // FAST + pointer compression: the layout-changing variant a one-size
    // -fits-all -Ofast never tries but the setting space contains.
    opt::OptFlags f = opt::fast_flags();
    f.ptrcompress = true;
    consider(f);
  }
  while (out.size() < budget) {
    const auto bits =
        static_cast<std::uint32_t>(rng.next_below(opt::OptFlags::kEncodings));
    consider(opt::OptFlags::decode(bits));
  }
  return out;
}

}  // namespace ilc::search
