#include "search/space.hpp"

#include "support/assert.hpp"
#include "support/string_utils.hpp"

namespace ilc::search {

bool SequenceSpace::valid(const std::vector<opt::PassId>& seq) const {
  if (seq.size() != length) return false;
  unsigned unrolls = 0;
  for (opt::PassId id : seq) {
    bool in_space = false;
    for (opt::PassId p : passes)
      if (p == id) in_space = true;
    if (!in_space) return false;
    if (opt::is_unroll(id)) ++unrolls;
  }
  if (!unroll_at_most_once || unrolls <= 1) return true;
  // The constraint is waived when the space offers no non-unroll pass:
  // otherwise every sequence of length >= 2 would be invalid and sample()
  // would rejection-loop forever.
  for (opt::PassId p : passes)
    if (!opt::is_unroll(p)) return false;
  return true;
}

std::uint64_t SequenceSpace::count() const {
  const std::uint64_t p = passes.size();
  std::uint64_t u = 0;
  for (opt::PassId id : passes)
    if (opt::is_unroll(id)) ++u;
  const std::uint64_t nu = p - u;
  if (!unroll_at_most_once || nu == 0) {
    // nu == 0: unroll-only space, constraint waived (see valid()).
    std::uint64_t total = 1;
    for (unsigned i = 0; i < length; ++i) total *= p;
    return total;
  }
  // No unroll anywhere + exactly one unroll at one of `length` positions.
  std::uint64_t no_unroll = 1;
  for (unsigned i = 0; i < length; ++i) no_unroll *= nu;
  std::uint64_t one_unroll_rest = 1;
  for (unsigned i = 0; i + 1 < length; ++i) one_unroll_rest *= nu;
  return no_unroll + static_cast<std::uint64_t>(length) * u * one_unroll_rest;
}

std::vector<opt::PassId> SequenceSpace::sample(support::Rng& rng) const {
  for (;;) {
    std::vector<opt::PassId> seq;
    seq.reserve(length);
    for (unsigned i = 0; i < length; ++i)
      seq.push_back(passes[rng.next_below(passes.size())]);
    if (valid(seq)) return seq;
  }
}

std::uint64_t SequenceSpace::raw_count() const {
  std::uint64_t total = 1;
  for (unsigned i = 0; i < length; ++i) total *= passes.size();
  return total;
}

std::vector<opt::PassId> SequenceSpace::at_raw(std::uint64_t index) const {
  ILC_CHECK(index < raw_count());
  std::vector<opt::PassId> seq(length);
  for (unsigned i = 0; i < length; ++i) {
    seq[i] = passes[index % passes.size()];
    index /= passes.size();
  }
  return seq;
}

std::string sequence_to_string(const std::vector<opt::PassId>& seq) {
  std::vector<std::string> names;
  names.reserve(seq.size());
  for (opt::PassId id : seq) names.emplace_back(opt::pass_name(id));
  return support::join(names, ",");
}

std::vector<opt::PassId> sequence_from_string(const std::string& text) {
  std::vector<opt::PassId> out;
  if (text.empty()) return out;
  for (const std::string& name : support::split(text, ','))
    out.push_back(opt::pass_from_name(support::trim(name)));
  return out;
}

}  // namespace ilc::search
