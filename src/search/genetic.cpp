// Generational genetic algorithm over pass sequences, after Cooper,
// Schielke & Subramanian's code-size GA (paper Section IV): tournament
// selection, single-point crossover, per-gene mutation, elitism.
//
// Evaluation is batched per generation: breeding (the only RNG consumer)
// runs sequentially, then the new individuals are scored concurrently on a
// thread pool and committed to the trace in population order. Because a
// candidate's metric is a pure function of its genes, the trace — and
// therefore selection in every later generation — is bit-identical to the
// sequential GA for a fixed seed, at any GaParams::workers.
#include "search/strategies.hpp"

#include <algorithm>
#include <memory>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/assert.hpp"
#include "support/thread_pool.hpp"

namespace ilc::search {

namespace {

obs::Counter& c_ga_generations() {
  static obs::Counter c =
      obs::Registry::instance().counter("search.ga.generations");
  return c;
}
obs::Counter& c_ga_evaluations() {
  static obs::Counter c =
      obs::Registry::instance().counter("search.ga.evaluations");
  return c;
}
obs::Gauge& g_ga_last_best() {
  static obs::Gauge g =
      obs::Registry::instance().gauge("search.ga.last_best_metric");
  return g;
}

struct Individual {
  std::vector<opt::PassId> genes;
  std::uint64_t metric = ~0ULL;
};

void repair(std::vector<opt::PassId>& genes, const SequenceSpace& space,
            support::Rng& rng) {
  if (!space.unroll_at_most_once) return;
  // Replace extra unrolls (after the first) with random non-unroll passes.
  std::vector<opt::PassId> non_unroll;
  for (opt::PassId p : space.passes)
    if (!opt::is_unroll(p)) non_unroll.push_back(p);
  bool seen = false;
  for (opt::PassId& g : genes) {
    if (!opt::is_unroll(g)) continue;
    if (!seen) {
      seen = true;
      continue;
    }
    g = non_unroll[rng.next_below(non_unroll.size())];
  }
}

}  // namespace

SearchTrace genetic_search(Evaluator& eval, const SequenceSpace& space,
                           support::Rng& rng, unsigned budget, Objective obj,
                           GaParams params) {
  ILC_CHECK(params.population >= 4);
  SearchTrace trace;

  std::unique_ptr<support::ThreadPool> pool;
  if (params.workers > 1)
    pool = std::make_unique<support::ThreadPool>(params.workers);

  // Score inds[first, first+count) concurrently, then commit the results
  // in index order — the same order the sequential GA records them.
  // Per-generation observability: one span + three registry updates per
  // scored batch, nothing per individual.
  auto evaluate_range = [&](std::vector<Individual>& inds, std::size_t first,
                            std::size_t count) {
    obs::Span span("search.ga.generation");
    support::parallel_for(pool.get(), first, first + count,
                          [&](std::size_t i) {
                            inds[i].metric =
                                metric_of(eval.eval_sequence(inds[i].genes), obj);
                          });
    for (std::size_t i = first; i < first + count; ++i)
      trace.record(inds[i].genes, inds[i].metric);
    c_ga_generations().add(1);
    c_ga_evaluations().add(count);
    if (trace.best_metric != ~0ULL)
      g_ga_last_best().set(static_cast<std::int64_t>(trace.best_metric));
    span.annotate("evaluations", std::to_string(count));
  };

  std::vector<Individual> pop(params.population);
  for (auto& ind : pop) ind.genes = space.sample(rng);
  // Individuals past the budget stay unevaluated (metric ~0ULL), exactly
  // as when the sequential loop stops recording mid-population.
  evaluate_range(pop, 0, std::min<std::size_t>(params.population, budget));

  auto tournament = [&]() -> const Individual& {
    const Individual* best = &pop[rng.next_below(pop.size())];
    for (unsigned i = 1; i < params.tournament; ++i) {
      const Individual* cand = &pop[rng.next_below(pop.size())];
      if (cand->metric < best->metric) best = cand;
    }
    return *best;
  };

  while (trace.evaluations < budget) {
    std::sort(pop.begin(), pop.end(),
              [](const Individual& a, const Individual& b) {
                return a.metric < b.metric;
              });
    std::vector<Individual> next(pop.begin(),
                                 pop.begin() + std::min<std::size_t>(
                                                   params.elites, pop.size()));
    while (next.size() < params.population &&
           trace.evaluations + (next.size() - params.elites) <
               budget + params.population) {
      Individual child;
      const Individual& a = tournament();
      const Individual& b = tournament();
      child.genes = a.genes;
      if (rng.next_bool(params.crossover_rate) && space.length >= 2) {
        const std::size_t cut = 1 + rng.next_below(space.length - 1);
        for (std::size_t i = cut; i < space.length; ++i)
          child.genes[i] = b.genes[i];
      }
      for (std::size_t i = 0; i < space.length; ++i)
        if (rng.next_bool(params.mutation_rate))
          child.genes[i] = space.passes[rng.next_below(space.passes.size())];
      repair(child.genes, space, rng);
      ILC_ASSERT(space.valid(child.genes));
      next.push_back(std::move(child));
    }
    const std::size_t first =
        std::min<std::size_t>(params.elites, next.size());
    const std::size_t evaluable = std::min<std::size_t>(
        next.size() - first, budget - trace.evaluations);
    evaluate_range(next, first, evaluable);
    // Drop any never-evaluated stragglers (budget exhausted mid-generation).
    next.erase(std::remove_if(next.begin(), next.end(),
                              [](const Individual& ind) {
                                return ind.metric == ~0ULL;
                              }),
               next.end());
    if (next.size() < 4) break;
    pop = std::move(next);
  }
  return trace;
}

}  // namespace ilc::search
