// Generational genetic algorithm over pass sequences, after Cooper,
// Schielke & Subramanian's code-size GA (paper Section IV): tournament
// selection, single-point crossover, per-gene mutation, elitism.
//
// Evaluation is batched per generation: breeding (the only RNG consumer)
// runs sequentially, then the new individuals are scored concurrently on a
// thread pool and committed to the trace in population order. Because a
// candidate's metric is a pure function of its genes, the trace — and
// therefore selection in every later generation — is bit-identical to the
// sequential GA for a fixed seed, at any GaParams::workers.
//
// Round two extensions (ROADMAP item 3): the initial population can be
// seeded from a SeedBank cluster's best-known sequences; a learned
// estimator can oversample-and-prefilter children before simulation
// budget is spent; and Objective::Pareto switches selection to
// NSGA-II-lite (non-dominated rank, then crowding distance, with
// deterministic tie-breaks) while maintaining the trace's Pareto archive.
#include "search/strategies.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "search/seedbank.hpp"
#include "support/assert.hpp"
#include "support/thread_pool.hpp"

namespace ilc::search {

namespace {

obs::Counter& c_ga_generations() {
  static obs::Counter c =
      obs::Registry::instance().counter("search.ga.generations");
  return c;
}
obs::Counter& c_ga_evaluations() {
  static obs::Counter c =
      obs::Registry::instance().counter("search.ga.evaluations");
  return c;
}
obs::Gauge& g_ga_last_best() {
  static obs::Gauge g =
      obs::Registry::instance().gauge("search.ga.last_best_metric");
  return g;
}
obs::Counter& c_estimator_skipped() {
  static obs::Counter c =
      obs::Registry::instance().counter("search.estimator.skipped");
  return c;
}

struct Individual {
  std::vector<opt::PassId> genes;
  std::uint64_t metric = ~0ULL;
  std::uint64_t cycles = ~0ULL;
  std::uint64_t code_size = ~0ULL;
  // NSGA-II-lite keys, valid only under Objective::Pareto after
  // assign_pareto_keys(). Unevaluated individuals keep rank ~0u and sort
  // last, exactly as metric ~0ULL does in scalar mode.
  unsigned rank = ~0u;
  double crowding = 0.0;
};

bool pareto_dominates(const Individual& a, const Individual& b) {
  if (a.cycles > b.cycles || a.code_size > b.code_size) return false;
  return a.cycles < b.cycles || a.code_size < b.code_size;
}

/// Non-dominated sorting + crowding distance over the evaluated members.
/// O(n^2) peeling — populations are tens of individuals. Deterministic:
/// fronts are peeled in index order and crowding uses a (cycles,
/// code_size, index) sort.
void assign_pareto_keys(std::vector<Individual>& pop) {
  const std::size_t n = pop.size();
  std::vector<std::size_t> todo;
  for (std::size_t i = 0; i < n; ++i) {
    pop[i].rank = ~0u;
    pop[i].crowding = 0.0;
    if (pop[i].metric != ~0ULL) todo.push_back(i);
  }
  std::vector<char> done(n, 0);
  std::size_t remaining = todo.size();
  unsigned r = 0;
  while (remaining > 0) {
    std::vector<std::size_t> front;
    for (std::size_t i : todo) {
      if (done[i]) continue;
      bool dominated = false;
      for (std::size_t j : todo) {
        if (done[j] || j == i) continue;
        if (pareto_dominates(pop[j], pop[i])) {
          dominated = true;
          break;
        }
      }
      if (!dominated) front.push_back(i);
    }
    for (std::size_t i : front) {
      pop[i].rank = r;
      done[i] = 1;
    }
    remaining -= front.size();

    // Crowding distance along the front: boundary points get infinity,
    // interior points the normalized neighbor gap summed over both
    // objectives (cycles ascend, code_size descends along the sort).
    std::sort(front.begin(), front.end(), [&](std::size_t a, std::size_t b) {
      if (pop[a].cycles != pop[b].cycles) return pop[a].cycles < pop[b].cycles;
      if (pop[a].code_size != pop[b].code_size)
        return pop[a].code_size < pop[b].code_size;
      return a < b;
    });
    if (front.size() <= 2) {
      for (std::size_t i : front)
        pop[i].crowding = std::numeric_limits<double>::infinity();
    } else {
      const double c_range =
          static_cast<double>(pop[front.back()].cycles) -
          static_cast<double>(pop[front.front()].cycles);
      double s_min = std::numeric_limits<double>::infinity();
      double s_max = -std::numeric_limits<double>::infinity();
      for (std::size_t i : front) {
        s_min = std::min(s_min, static_cast<double>(pop[i].code_size));
        s_max = std::max(s_max, static_cast<double>(pop[i].code_size));
      }
      const double s_range = s_max - s_min;
      pop[front.front()].crowding = std::numeric_limits<double>::infinity();
      pop[front.back()].crowding = std::numeric_limits<double>::infinity();
      for (std::size_t k = 1; k + 1 < front.size(); ++k) {
        double d = 0.0;
        if (c_range > 0)
          d += (static_cast<double>(pop[front[k + 1]].cycles) -
                static_cast<double>(pop[front[k - 1]].cycles)) /
               c_range;
        if (s_range > 0)
          d += std::abs(static_cast<double>(pop[front[k - 1]].code_size) -
                        static_cast<double>(pop[front[k + 1]].code_size)) /
               s_range;
        pop[front[k]].crowding = d;
      }
    }
    ++r;
  }
}

void repair(std::vector<opt::PassId>& genes, const SequenceSpace& space,
            support::Rng& rng) {
  if (!space.unroll_at_most_once) return;
  // Replace extra unrolls (after the first) with random non-unroll passes.
  std::vector<opt::PassId> non_unroll;
  for (opt::PassId p : space.passes)
    if (!opt::is_unroll(p)) non_unroll.push_back(p);
  // Unroll-only space: there is nothing to substitute, and the constraint
  // is waived by SequenceSpace::valid() — keep the extra unrolls.
  if (non_unroll.empty()) return;
  bool seen = false;
  for (opt::PassId& g : genes) {
    if (!opt::is_unroll(g)) continue;
    if (!seen) {
      seen = true;
      continue;
    }
    g = non_unroll[rng.next_below(non_unroll.size())];
  }
}

}  // namespace

SearchTrace genetic_search(Evaluator& eval, const SequenceSpace& space,
                           support::Rng& rng, unsigned budget, Objective obj,
                           GaParams params) {
  ILC_CHECK(params.population >= 4);
  SearchTrace trace;
  const bool pareto = obj == Objective::Pareto;

  std::unique_ptr<support::ThreadPool> pool;
  if (params.workers > 1)
    pool = std::make_unique<support::ThreadPool>(params.workers);

  // Score inds[first, first+count) concurrently, then commit the results
  // in index order — the same order the sequential GA records them.
  // Per-generation observability: one span + three registry updates per
  // scored batch, nothing per individual.
  auto evaluate_range = [&](std::vector<Individual>& inds, std::size_t first,
                            std::size_t count) {
    obs::Span span("search.ga.generation");
    support::parallel_for(pool.get(), first, first + count,
                          [&](std::size_t i) {
                            const EvalResult r =
                                eval.eval_sequence(inds[i].genes);
                            inds[i].cycles = r.cycles;
                            inds[i].code_size = r.code_size;
                            inds[i].metric = metric_of(r, obj);
                          });
    for (std::size_t i = first; i < first + count; ++i)
      trace.record(inds[i].genes, inds[i].cycles, inds[i].code_size, obj);
    c_ga_generations().add(1);
    c_ga_evaluations().add(count);
    if (trace.best_metric != ~0ULL)
      g_ga_last_best().set(static_cast<std::int64_t>(trace.best_metric));
    span.annotate("evaluations", std::to_string(count));
  };

  // Initial population: cluster seeds first (invalid or wrong-length
  // seeds fall back to uniform samples), the remainder uniform.
  std::vector<Individual> pop(params.population);
  for (std::size_t i = 0; i < pop.size(); ++i) {
    if (i < params.seeds.size() && space.valid(params.seeds[i]))
      pop[i].genes = params.seeds[i];
    else
      pop[i].genes = space.sample(rng);
  }
  // Individuals past the budget stay unevaluated (metric ~0ULL), exactly
  // as when the sequential loop stops recording mid-population.
  evaluate_range(pop, 0, std::min<std::size_t>(params.population, budget));

  // "Is a a better survivor than b" under the active objective.
  auto better = [&](const Individual& a, const Individual& b) {
    if (pareto) {
      if (a.rank != b.rank) return a.rank < b.rank;
      if (a.crowding != b.crowding) return a.crowding > b.crowding;
      if (a.cycles != b.cycles) return a.cycles < b.cycles;
      return a.code_size < b.code_size;
    }
    return a.metric < b.metric;
  };

  auto tournament = [&]() -> const Individual& {
    const Individual* best = &pop[rng.next_below(pop.size())];
    for (unsigned i = 1; i < params.tournament; ++i) {
      const Individual* cand = &pop[rng.next_below(pop.size())];
      if (better(*cand, *best)) best = cand;
    }
    return *best;
  };

  auto breed_one = [&]() -> Individual {
    Individual child;
    const Individual& a = tournament();
    const Individual& b = tournament();
    child.genes = a.genes;
    if (rng.next_bool(params.crossover_rate) && space.length >= 2) {
      const std::size_t cut = 1 + rng.next_below(space.length - 1);
      for (std::size_t i = cut; i < space.length; ++i)
        child.genes[i] = b.genes[i];
    }
    for (std::size_t i = 0; i < space.length; ++i)
      if (rng.next_bool(params.mutation_rate))
        child.genes[i] = space.passes[rng.next_below(space.passes.size())];
    repair(child.genes, space, rng);
    ILC_ASSERT(space.valid(child.genes));
    return child;
  };

  while (trace.evaluations < budget) {
    if (pareto) {
      assign_pareto_keys(pop);
      std::stable_sort(pop.begin(), pop.end(), better);
    } else {
      std::sort(pop.begin(), pop.end(),
                [](const Individual& a, const Individual& b) {
                  return a.metric < b.metric;
                });
    }
    std::vector<Individual> next(pop.begin(),
                                 pop.begin() + std::min<std::size_t>(
                                                   params.elites, pop.size()));
    // Saturating count of children bred so far, against the number of
    // elites actually carried over: when the surviving population is
    // smaller than `params.elites` the plain `next.size() - params.elites`
    // underflows, disables breeding, and the generation loop spins with
    // zero progress.
    const std::size_t elite_count = next.size();
    auto bred_so_far = [&]() -> std::size_t {
      return next.size() - elite_count;
    };
    if (params.estimator != nullptr && params.oversample > 1) {
      // Oversample children, keep the predicted-best subset (stable in
      // breeding order), charge the rest to the estimator-skip counter.
      // Prediction is RNG-free, so determinism is untouched.
      const std::size_t want =
          params.population > next.size() ? params.population - next.size()
                                          : 0;
      std::vector<Individual> cands;
      cands.reserve(want * params.oversample);
      for (std::size_t i = 0; i < want * params.oversample; ++i)
        cands.push_back(breed_one());
      std::vector<std::size_t> idx(cands.size());
      for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
      std::vector<double> pred(cands.size());
      for (std::size_t i = 0; i < cands.size(); ++i)
        pred[i] = params.estimator->predict(cands[i].genes);
      std::stable_sort(idx.begin(), idx.end(),
                       [&](std::size_t a, std::size_t b) {
                         return pred[a] < pred[b];
                       });
      idx.resize(std::min(want, idx.size()));
      std::sort(idx.begin(), idx.end());
      for (std::size_t i : idx) next.push_back(std::move(cands[i]));
      c_estimator_skipped().add(cands.size() - idx.size());
    } else {
      while (next.size() < params.population &&
             trace.evaluations + bred_so_far() <
                 budget + params.population) {
        next.push_back(breed_one());
      }
    }
    const std::size_t first = elite_count;
    const std::size_t evaluable = std::min<std::size_t>(
        next.size() - first, budget - trace.evaluations);
    evaluate_range(next, first, evaluable);
    // No child could be evaluated while budget remains: nothing can make
    // progress anymore, so terminate instead of spinning.
    if (evaluable == 0 && trace.evaluations < budget) break;
    // Drop any never-evaluated stragglers (budget exhausted mid-generation).
    next.erase(std::remove_if(next.begin(), next.end(),
                              [](const Individual& ind) {
                                return ind.metric == ~0ULL;
                              }),
               next.end());
    if (next.size() < 4) break;
    pop = std::move(next);
  }
  return trace;
}

}  // namespace ilc::search
