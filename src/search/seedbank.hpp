// Clustered KB seeding (ROADMAP item 3, after GRACE's representation-
// aware clustering, PAPERS.md): group the knowledge base's programs by
// normalized static-feature vectors with k-means, remember each cluster's
// best-known pass sequences, and fit a per-cluster learned performance
// estimator. A new program is assigned to its nearest cluster by static
// features and inherits that cluster's seeds and estimator, so GA
// populations and random searches warm-start from configurations that
// worked on similar programs instead of cold uniform samples.
//
// Deterministic: clustering runs under a fixed Rng seed at construction;
// assignment, seed order, and estimator predictions are pure functions
// afterwards — seeded searches keep the fixed-seed bit-identical trace
// contract at any worker count.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "features/features.hpp"
#include "kb/knowledge_base.hpp"
#include "ml/regress.hpp"
#include "search/space.hpp"
#include "search/strategies.hpp"

namespace ilc::search {

/// Learned relative-cycles estimator over sequence encodings (pass-count
/// histogram + leading-pass one-hot, ridge regression). Predictions are
/// cycles relative to the program's unoptimized baseline, so models fit
/// on one cluster transfer across programs of different absolute scale.
class PerfEstimator {
 public:
  /// Fit from (sequence, relative-cycles) samples. The model only
  /// becomes usable (ok()) with at least `min_rows` samples.
  void fit(const std::vector<std::vector<opt::PassId>>& seqs,
           const std::vector<double>& rel_cycles, std::size_t min_rows = 8);

  bool ok() const { return ok_; }
  /// Predicted relative cycles; lower is better. Only valid when ok().
  double predict(const std::vector<opt::PassId>& seq) const;

  /// Fixed-width sequence encoding (exposed for tests).
  static std::vector<double> encode(const std::vector<opt::PassId>& seq);

 private:
  ml::RidgeRegression model_{1e-2};
  bool ok_ = false;
};

struct SeedBankOptions {
  unsigned clusters = 4;
  unsigned seeds_per_cluster = 8;
  /// Share of each program's sequence records (best-first) contributed
  /// as seed candidates. At least one record always contributes.
  double top_fraction = 0.25;
  /// Restrict to records of this machine ("" = any).
  std::string machine;
  /// Drop this program's records entirely (leave-one-out benching).
  std::string exclude_program;
  /// RNG seed for k-means++ initialization.
  std::uint64_t seed = 2008;
  /// Minimum training rows before a cluster's estimator switches on.
  std::size_t min_estimator_rows = 8;
};

class SeedBank {
 public:
  SeedBank() = default;
  /// Build from the KB's "sequence" records: one feature row per program
  /// (its first sequence record's static features), k-means clustering,
  /// per-cluster merged seed lists and estimators.
  SeedBank(const kb::KnowledgeBase& kb, const SequenceSpace& space,
           SeedBankOptions opts = {});

  bool empty() const { return clusters_.empty(); }
  std::size_t num_clusters() const { return clusters_.size(); }
  std::size_t num_programs() const { return num_programs_; }

  /// Nearest cluster for a program's static features.
  std::size_t assign(const std::vector<double>& static_features) const;

  /// Best-known sequences of the assigned cluster, best-first, capped at
  /// `max_n`. Empty when the bank is empty.
  std::vector<std::vector<opt::PassId>> seeds_for(
      const std::vector<double>& static_features,
      std::size_t max_n = ~std::size_t{0}) const;

  /// The assigned cluster's estimator, or nullptr when it lacks data.
  const PerfEstimator* estimator_for(
      const std::vector<double>& static_features) const;

  /// Convenience: seeds + estimator bundled for the search strategies.
  Seeding seeding_for(const std::vector<double>& static_features,
                      std::size_t max_n = 8) const;

 private:
  struct Cluster {
    /// (relative cycles, sequence), sorted best-first, deduped.
    std::vector<std::pair<double, std::vector<opt::PassId>>> seeds;
    PerfEstimator estimator;
  };

  std::size_t num_programs_ = 0;
  feat::Scaler scaler_;
  std::vector<std::vector<double>> centroids_;
  std::vector<Cluster> clusters_;
};

}  // namespace ilc::search
