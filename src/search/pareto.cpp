#include "search/pareto.hpp"

#include <algorithm>

namespace ilc::search {

bool dominates(const ParetoPoint& a, const ParetoPoint& b) {
  if (a.cycles > b.cycles || a.code_size > b.code_size) return false;
  return a.cycles < b.cycles || a.code_size < b.code_size;
}

bool ParetoArchive::non_dominated(const ParetoPoint& p) const {
  for (const auto& q : front_) {
    if (dominates(q, p)) return false;
    if (q.cycles == p.cycles && q.code_size == p.code_size) return false;
  }
  return true;
}

bool ParetoArchive::insert(ParetoPoint p) {
  if (!non_dominated(p)) return false;
  front_.erase(std::remove_if(front_.begin(), front_.end(),
                              [&](const ParetoPoint& q) {
                                return dominates(p, q);
                              }),
               front_.end());
  auto pos = std::lower_bound(front_.begin(), front_.end(), p,
                              [](const ParetoPoint& a, const ParetoPoint& b) {
                                if (a.cycles != b.cycles)
                                  return a.cycles < b.cycles;
                                return a.code_size < b.code_size;
                              });
  front_.insert(pos, std::move(p));
  return true;
}

double ParetoArchive::hypervolume(std::uint64_t ref_cycles,
                                  std::uint64_t ref_size) const {
  // Front is sorted by cycles ascending; along a Pareto front code_size is
  // then strictly descending, so the dominated region decomposes into
  // disjoint slabs swept left-to-right: slab i spans [c_i, c_{i+1})
  // (ref_cycles for the last) with height (ref_size - s_i).
  double hv = 0.0;
  std::vector<const ParetoPoint*> kept;
  for (const auto& p : front_)
    if (p.cycles < ref_cycles && p.code_size < ref_size) kept.push_back(&p);
  for (std::size_t i = 0; i < kept.size(); ++i) {
    const double c0 = static_cast<double>(kept[i]->cycles);
    const double c1 = (i + 1 < kept.size())
                          ? static_cast<double>(kept[i + 1]->cycles)
                          : static_cast<double>(ref_cycles);
    hv += (c1 - c0) *
          (static_cast<double>(ref_size) -
           static_cast<double>(kept[i]->code_size));
  }
  return hv;
}

}  // namespace ilc::search
