#include "search/evaluator.hpp"

#include "ir/fingerprint.hpp"
#include "obs/metrics.hpp"
#include "obs/timer.hpp"
#include "obs/trace.hpp"
#include "sim/program_cache.hpp"

namespace ilc::search {

namespace {

obs::Counter& c_simulations() {
  static obs::Counter c =
      obs::Registry::instance().counter("search.simulations");
  return c;
}
obs::Counter& c_eval_cache_hits() {
  static obs::Counter c =
      obs::Registry::instance().counter("search.eval_cache.hits");
  return c;
}
obs::Histogram& h_simulate_us() {
  static obs::Histogram h =
      obs::Registry::instance().histogram("search.simulate_us");
  return h;
}

/// Per-thread scratch for candidate materialization: copy-assigning the
/// base module into a retained buffer reuses the vectors' capacity from
/// the previous candidate instead of re-allocating the whole module tree
/// for every evaluation.
ir::Module& scratch_module() {
  thread_local ir::Module scratch;
  return scratch;
}

}  // namespace

Evaluator::Evaluator(const ir::Module& base, sim::MachineConfig cfg)
    : base_(base), cfg_(std::move(cfg)) {}

ir::Module Evaluator::optimized(const std::vector<opt::PassId>& seq) const {
  ir::Module m = base_;
  opt::run_sequence(m, seq);
  return m;
}

EvalResult Evaluator::simulate(const ir::Module& optimized_mod,
                               std::uint64_t fp) {
  // Decoded programs are shared process-wide: repeat evaluations of the
  // same optimized code (GA elites, svc warm paths) skip re-decoding. The
  // known fingerprint is passed through to avoid a second hash of the
  // module.
  obs::Span span("search.simulate");
  obs::ScopedTimerUs timer(h_simulate_us());
  std::shared_ptr<const sim::DecodedProgram> decoded;
  if (cfg_.decoded_execution)
    decoded = sim::ProgramCache::instance().get(optimized_mod, fp);
  sim::Simulator sim(optimized_mod, cfg_, std::move(decoded));
  const sim::RunResult rr = sim.run();
  EvalResult res;
  res.cycles = rr.cycles;
  res.code_size = optimized_mod.code_size();
  res.instructions = rr.instructions;
  res.counters = rr.counters;
  simulations_.fetch_add(1, std::memory_order_relaxed);
  c_simulations().add(1);
  return res;
}

EvalResult Evaluator::measure(const ir::Module& optimized_mod) {
  const std::uint64_t fp = ir::fingerprint(optimized_mod);
  if (!cache_enabled_) return simulate(optimized_mod, fp);

  Shard& sh = shard_of(fp);
  {
    std::unique_lock<std::mutex> lock(sh.mu);
    for (;;) {
      auto it = sh.map.find(fp);
      if (it == sh.map.end()) {
        // Leader: claim the fingerprint, then simulate outside the lock.
        sh.map.emplace(fp, Entry{});
        break;
      }
      if (it->second.ready) {
        cache_hits_.fetch_add(1, std::memory_order_relaxed);
        c_eval_cache_hits().add(1);
        return it->second.result;
      }
      // Follower: a leader is simulating this fingerprint right now.
      sh.cv.wait(lock);
    }
  }

  EvalResult res;
  try {
    res = simulate(optimized_mod, fp);
  } catch (...) {
    // Release the claim so a waiting follower can take over (and observe
    // the same trap by re-running), then propagate.
    std::lock_guard<std::mutex> lock(sh.mu);
    sh.map.erase(fp);
    sh.cv.notify_all();
    throw;
  }

  {
    std::lock_guard<std::mutex> lock(sh.mu);
    Entry& e = sh.map[fp];
    e.result = res;
    e.ready = true;
  }
  sh.cv.notify_all();
  return res;
}

EvalResult Evaluator::eval_sequence(const std::vector<opt::PassId>& seq) {
  ir::Module& m = scratch_module();
  m = base_;
  opt::run_sequence(m, seq);
  return measure(m);
}

EvalResult Evaluator::eval_flags(const opt::OptFlags& flags) {
  ir::Module& m = scratch_module();
  m = base_;
  opt::run_sequence(m, opt::pipeline(flags));
  return measure(m);
}

}  // namespace ilc::search
