#include "search/evaluator.hpp"

#include "ir/fingerprint.hpp"

namespace ilc::search {

Evaluator::Evaluator(const ir::Module& base, sim::MachineConfig cfg)
    : base_(base), cfg_(std::move(cfg)) {}

ir::Module Evaluator::optimized(const std::vector<opt::PassId>& seq) const {
  ir::Module m = base_;
  opt::run_sequence(m, seq);
  return m;
}

EvalResult Evaluator::measure(const ir::Module& optimized_mod) {
  const std::uint64_t fp = ir::fingerprint(optimized_mod);
  if (cache_enabled_) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = cache_.find(fp);
    if (it != cache_.end()) {
      cache_hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
  }

  sim::Simulator sim(optimized_mod, cfg_);
  const sim::RunResult rr = sim.run();
  EvalResult res;
  res.cycles = rr.cycles;
  res.code_size = optimized_mod.code_size();
  res.instructions = rr.instructions;
  res.counters = rr.counters;

  simulations_.fetch_add(1, std::memory_order_relaxed);
  if (cache_enabled_) {
    std::lock_guard<std::mutex> lock(mu_);
    cache_.emplace(fp, res);
  }
  return res;
}

EvalResult Evaluator::eval_sequence(const std::vector<opt::PassId>& seq) {
  ir::Module m = base_;
  opt::run_sequence(m, seq);
  return measure(m);
}

EvalResult Evaluator::eval_flags(const opt::OptFlags& flags) {
  ir::Module m = base_;
  opt::run_sequence(m, opt::pipeline(flags));
  return measure(m);
}

}  // namespace ilc::search
