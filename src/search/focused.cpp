#include "search/focused.hpp"

#include <algorithm>
#include <cmath>

#include "support/assert.hpp"

namespace ilc::search {

std::size_t FocusedModel::pass_index(opt::PassId id) const {
  for (std::size_t i = 0; i < space_.passes.size(); ++i)
    if (space_.passes[i] == id) return i;
  ILC_CHECK_MSG(false, "pass not in space");
  return 0;
}

FocusedModel::FocusedModel(std::vector<ProgramSearchData> training,
                           SequenceSpace space, FocusedKind kind,
                           unsigned mixture)
    : space_(std::move(space)), kind_(kind), mixture_(mixture) {
  ILC_CHECK(!training.empty());
  ILC_CHECK(mixture_ >= 1);
  const std::size_t np = space_.passes.size();

  std::vector<std::vector<double>> feature_rows;
  for (const auto& t : training) feature_rows.push_back(t.features);
  scaler_.fit(feature_rows);

  for (const auto& t : training) {
    ProgramModel m;
    m.program = t.program;
    m.scaled_features = scaler_.transform(t.features);
    // Laplace-smoothed counts.
    m.iid.assign(np, 1.0);
    m.markov.assign(np, std::vector<double>(np, 0.5));
    for (const auto& seq : t.good_seqs) {
      for (std::size_t i = 0; i < seq.size(); ++i) {
        m.iid[pass_index(seq[i])] += 1.0;
        if (i > 0)
          m.markov[pass_index(seq[i - 1])][pass_index(seq[i])] += 1.0;
      }
    }
    // Normalize.
    double total = 0.0;
    for (double v : m.iid) total += v;
    for (double& v : m.iid) v /= total;
    for (auto& row : m.markov) {
      double rt = 0.0;
      for (double v : row) rt += v;
      for (double& v : row) v /= rt;
    }
    models_.push_back(std::move(m));
  }
}

void FocusedModel::set_target(const std::vector<double>& features) {
  const auto scaled = scaler_.transform(features);
  std::vector<std::pair<double, std::size_t>> by_distance;
  for (std::size_t i = 0; i < models_.size(); ++i)
    by_distance.emplace_back(
        feat::euclidean(scaled, models_[i].scaled_features), i);
  std::sort(by_distance.begin(), by_distance.end());

  active_.clear();
  const std::size_t k =
      std::min<std::size_t>(mixture_, by_distance.size());
  double total = 0.0;
  for (std::size_t r = 0; r < k; ++r) {
    const double w = 1.0 / (by_distance[r].first + 1e-6);
    active_.emplace_back(by_distance[r].second, w);
    total += w;
  }
  for (auto& [idx, w] : active_) w /= total;
  target_set_ = true;
}

const std::string& FocusedModel::selected_program() const {
  ILC_CHECK(target_set_);
  return models_[active_.front().first].program;
}

std::vector<opt::PassId> FocusedModel::sample(support::Rng& rng) const {
  ILC_CHECK(target_set_);
  // Draw the mixture component, then sample a sequence from it.
  std::vector<double> weights;
  for (const auto& [idx, w] : active_) weights.push_back(w);
  const ProgramModel& m = models_[active_[rng.next_weighted(weights)].first];
  for (int attempt = 0; attempt < 64; ++attempt) {
    std::vector<opt::PassId> seq;
    seq.reserve(space_.length);
    std::size_t prev = 0;
    for (unsigned i = 0; i < space_.length; ++i) {
      const std::vector<double>& dist =
          (i == 0 || kind_ == FocusedKind::Iid) ? m.iid : m.markov[prev];
      const std::size_t pick = rng.next_weighted(dist);
      seq.push_back(space_.passes[pick]);
      prev = pick;
    }
    if (space_.valid(seq)) return seq;
  }
  // Degenerate model (e.g. all mass on unroll passes): fall back to a
  // uniform valid sample rather than spinning.
  return space_.sample(rng);
}

double FocusedModel::component_log_prob(
    const ProgramModel& m, const std::vector<opt::PassId>& seq) const {
  double lp = 0.0;
  std::size_t prev = 0;
  for (std::size_t i = 0; i < seq.size(); ++i) {
    const std::size_t idx = pass_index(seq[i]);
    const std::vector<double>& dist =
        (i == 0 || kind_ == FocusedKind::Iid) ? m.iid : m.markov[prev];
    lp += std::log(dist[idx]);
    prev = idx;
  }
  return lp;
}

double FocusedModel::log_prob(const std::vector<opt::PassId>& seq) const {
  ILC_CHECK(target_set_);
  double p = 0.0;
  for (const auto& [idx, w] : active_)
    p += w * std::exp(component_log_prob(models_[idx], seq));
  return std::log(std::max(p, 1e-300));
}

SearchTrace focused_search(Evaluator& eval, const FocusedModel& model,
                           support::Rng& rng, unsigned budget, Objective obj,
                           unsigned workers) {
  return generator_search(
      eval, [&] { return model.sample(rng); }, budget, obj, workers);
}

SearchTrace focused_search(Evaluator& eval, const FocusedModel& model,
                           const Seeding& seeding, support::Rng& rng,
                           unsigned budget, Objective obj, unsigned workers) {
  // Cluster seeds are the starting points; the model fills the remaining
  // budget. Seeds are consumed before any model sample, so the RNG stream
  // for the model-driven tail is a pure function of the seed count.
  unsigned used = 0;
  auto gen = [&]() -> std::vector<opt::PassId> {
    while (used < seeding.seeds.size()) {
      const auto& seed = seeding.seeds[used++];
      if (model.space().valid(seed)) return seed;
    }
    return model.sample(rng);
  };
  return generator_search(eval, gen, budget, obj, workers);
}

}  // namespace ilc::search
