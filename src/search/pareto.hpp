// Pareto front maintenance over (cycles, code_size) — the MLComp-style
// multi-objective view of sequence selection (PAPERS.md): instead of
// collapsing the two axes into one scalar, search maintains the set of
// non-dominated configurations and reports the whole trade-off curve.
//
// Everything is deterministic: the archive is kept sorted by (cycles,
// code_size), insertion is order-independent in its final contents, and
// hypervolume is a pure function of the front and the reference point —
// so fixed-seed searches produce bit-identical archives at any worker
// count (evaluation order never touches the archive's final state).
#pragma once

#include <cstdint>
#include <vector>

#include "opt/pass.hpp"

namespace ilc::search {

/// One evaluated configuration on (or off) the front.
struct ParetoPoint {
  std::vector<opt::PassId> seq;
  std::uint64_t cycles = 0;
  std::uint64_t code_size = 0;
};

/// Minimization dominance: a dominates b when a is no worse on both axes
/// and strictly better on at least one.
bool dominates(const ParetoPoint& a, const ParetoPoint& b);

class ParetoArchive {
 public:
  /// Offer a point. Returns true when the point enters the archive (it is
  /// not dominated by any member); dominated members are evicted. A
  /// duplicate of an existing (cycles, code_size) pair is ignored, so the
  /// archive holds one representative sequence per objective vector.
  bool insert(ParetoPoint p);

  /// The current front, sorted by cycles ascending (code_size strictly
  /// descending along it).
  const std::vector<ParetoPoint>& front() const { return front_; }
  std::size_t size() const { return front_.size(); }
  bool empty() const { return front_.empty(); }

  /// Would `p` enter the archive? (No mutation.)
  bool non_dominated(const ParetoPoint& p) const;

  /// 2-D hypervolume dominated by the front with respect to a reference
  /// point that every interesting configuration should beat (typically
  /// the -O0 measurement). Points at or beyond the reference contribute
  /// nothing. Returned in absolute (cycles x bytes) units.
  double hypervolume(std::uint64_t ref_cycles, std::uint64_t ref_size) const;

 private:
  std::vector<ParetoPoint> front_;  // sorted by (cycles, code_size) asc
};

}  // namespace ilc::search
