// Search strategies over optimization spaces: random sampling (the
// RANDOM baseline of Fig. 2b), greedy mutation hill-climbing, genetic
// search (the Cooper et al. baseline, usable for cycles or code size),
// enumeration with sampling (Fig. 2a), and flag-space random search (the
// Fig. 3/4 setting space).
//
// Parallel evaluation: strategies that evaluate independent candidate
// batches (random, generator-driven, genetic) accept a worker count and
// fan the batch out over a support::ThreadPool. Candidates are *sampled*
// sequentially — the RNG is only ever consumed on the calling thread, in
// the same order as the sequential implementation — and results are
// committed to the SearchTrace in submission order, so a fixed-seed run
// produces a bit-identical trace at any worker count (see DESIGN.md, "The
// evaluation hot path"). Greedy search is inherently serial (each step
// depends on the last result) and takes no worker count.
#pragma once

#include <functional>
#include <vector>

#include "search/evaluator.hpp"
#include "search/space.hpp"
#include "support/rng.hpp"

namespace ilc::search {

enum class Objective { Cycles, CodeSize };

inline std::uint64_t metric_of(const EvalResult& r, Objective obj) {
  return obj == Objective::Cycles ? r.cycles : r.code_size;
}

struct SearchTrace {
  std::vector<std::uint64_t> best_so_far;  // metric after each evaluation
  std::vector<opt::PassId> best_seq;
  std::uint64_t best_metric = ~0ULL;
  unsigned evaluations = 0;

  void record(const std::vector<opt::PassId>& seq, std::uint64_t metric);
};

/// Evaluate `budget` uniform random sequences.
SearchTrace random_search(Evaluator& eval, const SequenceSpace& space,
                          support::Rng& rng, unsigned budget,
                          Objective obj = Objective::Cycles,
                          unsigned workers = 1);

/// Hill-climbing: mutate the best-so-far sequence one position at a time,
/// restarting from a random point when stuck.
SearchTrace greedy_search(Evaluator& eval, const SequenceSpace& space,
                          support::Rng& rng, unsigned budget,
                          Objective obj = Objective::Cycles);

/// Search driven by a sequence generator (used by the FOCUSSED model).
/// All `budget` candidates are drawn from `gen` up front, on the calling
/// thread, then evaluated (in parallel when workers > 1) — so a stateful
/// generator sees exactly the sequential call pattern.
SearchTrace generator_search(
    Evaluator& eval, const std::function<std::vector<opt::PassId>()>& gen,
    unsigned budget, Objective obj = Objective::Cycles,
    unsigned workers = 1);

struct GaParams {
  unsigned population = 20;
  double crossover_rate = 0.8;
  double mutation_rate = 0.1;
  unsigned tournament = 3;
  unsigned elites = 2;
  /// Evaluation fan-out per generation; breeding stays sequential, so the
  /// trace is identical at any value.
  unsigned workers = 1;
};

/// Generational GA in the style of Cooper et al.'s code-size work.
SearchTrace genetic_search(Evaluator& eval, const SequenceSpace& space,
                           support::Rng& rng, unsigned budget,
                           Objective obj = Objective::Cycles,
                           GaParams params = {});

/// One enumerated point of the Fig. 2a space map.
struct SpacePoint {
  std::vector<opt::PassId> seq;
  std::uint64_t cycles = 0;
};

/// Enumerate the space: exhaustively if its size <= budget, else a
/// uniform random sample of `budget` distinct-by-raw-index points.
std::vector<SpacePoint> enumerate_space(Evaluator& eval,
                                        const SequenceSpace& space,
                                        support::Rng& rng, std::uint64_t budget);

/// Random search over the flag-vector space (Fig. 3/4 settings). Always
/// includes O0 and FAST as anchors.
struct FlagPoint {
  opt::OptFlags flags;
  EvalResult result;
};
std::vector<FlagPoint> flag_search(Evaluator& eval, support::Rng& rng,
                                   unsigned budget);

}  // namespace ilc::search
