// Search strategies over optimization spaces: random sampling (the
// RANDOM baseline of Fig. 2b), greedy mutation hill-climbing, genetic
// search (the Cooper et al. baseline, usable for cycles or code size),
// enumeration with sampling (Fig. 2a), and flag-space random search (the
// Fig. 3/4 setting space).
//
// Parallel evaluation: strategies that evaluate independent candidate
// batches (random, generator-driven, genetic) accept a worker count and
// fan the batch out over a support::ThreadPool. Candidates are *sampled*
// sequentially — the RNG is only ever consumed on the calling thread, in
// the same order as the sequential implementation — and results are
// committed to the SearchTrace in submission order, so a fixed-seed run
// produces a bit-identical trace at any worker count (see DESIGN.md, "The
// evaluation hot path"). Greedy search is inherently serial (each step
// depends on the last result) and takes no worker count.
#pragma once

#include <functional>
#include <vector>

#include "search/evaluator.hpp"
#include "search/pareto.hpp"
#include "search/space.hpp"
#include "support/rng.hpp"

namespace ilc::search {

class PerfEstimator;  // search/seedbank.hpp

/// What the search minimizes. `Pareto` tracks the full (cycles, code_size)
/// front in SearchTrace::pareto; its scalar projection (best_metric,
/// best_so_far) is cycles, so single-objective consumers keep working.
enum class Objective { Cycles, CodeSize, Pareto };

inline std::uint64_t metric_of(const EvalResult& r, Objective obj) {
  return obj == Objective::CodeSize ? r.code_size : r.cycles;
}

struct SearchTrace {
  std::vector<std::uint64_t> best_so_far;  // metric after each evaluation
  std::vector<opt::PassId> best_seq;
  std::uint64_t best_metric = ~0ULL;
  unsigned evaluations = 0;
  ParetoArchive pareto;  // populated only under Objective::Pareto

  void record(const std::vector<opt::PassId>& seq, std::uint64_t metric);
  /// Full-result variant: feeds the Pareto archive under Objective::Pareto
  /// and falls through to the scalar projection for the trace.
  void record(const std::vector<opt::PassId>& seq, std::uint64_t cycles,
              std::uint64_t code_size, Objective obj);
};

/// Warm-start material for a search: prior-best sequences from the
/// program's KB cluster, plus an optional learned estimator that
/// pre-filters candidates before simulation budget is spent (skips are
/// counted on `search.estimator.skipped`).
struct Seeding {
  std::vector<std::vector<opt::PassId>> seeds;
  const PerfEstimator* estimator = nullptr;
  /// Candidate multiplier when the estimator is present: draw
  /// `oversample` x as many candidates, keep the predicted-best subset.
  unsigned oversample = 4;
};

/// Evaluate `budget` uniform random sequences.
SearchTrace random_search(Evaluator& eval, const SequenceSpace& space,
                          support::Rng& rng, unsigned budget,
                          Objective obj = Objective::Cycles,
                          unsigned workers = 1);

/// Random search warm-started from a SeedBank cluster: the seeds are
/// evaluated first, then the remaining budget is filled with uniform
/// samples — oversampled and pre-filtered by the estimator when one is
/// provided. Candidate sampling and filtering happen on the calling
/// thread, so fixed-seed traces are bit-identical at any worker count.
SearchTrace seeded_random_search(Evaluator& eval, const SequenceSpace& space,
                                 const Seeding& seeding, support::Rng& rng,
                                 unsigned budget,
                                 Objective obj = Objective::Cycles,
                                 unsigned workers = 1);

/// Hill-climbing: mutate the best-so-far sequence one position at a time,
/// restarting from a random point when stuck.
SearchTrace greedy_search(Evaluator& eval, const SequenceSpace& space,
                          support::Rng& rng, unsigned budget,
                          Objective obj = Objective::Cycles);

/// Search driven by a sequence generator (used by the FOCUSSED model).
/// All `budget` candidates are drawn from `gen` up front, on the calling
/// thread, then evaluated (in parallel when workers > 1) — so a stateful
/// generator sees exactly the sequential call pattern.
SearchTrace generator_search(
    Evaluator& eval, const std::function<std::vector<opt::PassId>()>& gen,
    unsigned budget, Objective obj = Objective::Cycles,
    unsigned workers = 1);

struct GaParams {
  unsigned population = 20;
  double crossover_rate = 0.8;
  double mutation_rate = 0.1;
  unsigned tournament = 3;
  unsigned elites = 2;
  /// Evaluation fan-out per generation; breeding stays sequential, so the
  /// trace is identical at any value.
  unsigned workers = 1;
  /// Cluster-best sequences injected into the initial population (invalid
  /// or wrong-length seeds are replaced by uniform samples).
  std::vector<std::vector<opt::PassId>> seeds;
  /// When set, each generation breeds `oversample` x the needed children
  /// and keeps the predicted-best subset before spending simulations.
  const PerfEstimator* estimator = nullptr;
  unsigned oversample = 2;
};

/// Generational GA in the style of Cooper et al.'s code-size work. Under
/// Objective::Pareto, selection is NSGA-II-lite: non-dominated rank then
/// crowding distance, with deterministic (cycles, code_size) tie-breaks.
SearchTrace genetic_search(Evaluator& eval, const SequenceSpace& space,
                           support::Rng& rng, unsigned budget,
                           Objective obj = Objective::Cycles,
                           GaParams params = {});

/// One enumerated point of the Fig. 2a space map.
struct SpacePoint {
  std::vector<opt::PassId> seq;
  std::uint64_t cycles = 0;
};

/// Enumerate the space: exhaustively if its size <= budget, else a
/// uniform random sample of `budget` distinct-by-raw-index points.
std::vector<SpacePoint> enumerate_space(Evaluator& eval,
                                        const SequenceSpace& space,
                                        support::Rng& rng, std::uint64_t budget);

/// Random search over the flag-vector space (Fig. 3/4 settings). Always
/// includes O0 and FAST as anchors.
struct FlagPoint {
  opt::OptFlags flags;
  EvalResult result;
};
std::vector<FlagPoint> flag_search(Evaluator& eval, support::Rng& rng,
                                   unsigned budget);

}  // namespace ilc::search
