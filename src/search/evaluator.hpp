// The performance oracle used by every search strategy: apply an
// optimization configuration to a pristine copy of the program, simulate
// it, and memoize the result by the fingerprint of the optimized module —
// distinct sequences frequently converge to identical code, and the cache
// collapses them (design decision #4 in DESIGN.md).
//
// Built for concurrent callers (the parallel GA and the tuning service):
// the memo cache is striped across sharded mutexes so unrelated
// fingerprints never contend, and each shard is single-flight — when two
// workers miss on the same fingerprint simultaneously, one simulates and
// the others block on the shard's condition variable until the result
// lands, so every unique fingerprint is simulated exactly once. Candidate
// materialization reuses a per-thread scratch module (copy-assignment into
// retained capacity) instead of constructing a fresh deep copy per
// candidate.
#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <mutex>
#include <unordered_map>

#include "ir/module.hpp"
#include "opt/pipelines.hpp"
#include "sim/interpreter.hpp"

namespace ilc::search {

struct EvalResult {
  std::uint64_t cycles = 0;
  std::uint64_t code_size = 0;
  std::uint64_t instructions = 0;
  sim::Counters counters;
};

class Evaluator {
 public:
  Evaluator(const ir::Module& base, sim::MachineConfig cfg);

  /// Apply a pass sequence and measure. Thread-safe.
  EvalResult eval_sequence(const std::vector<opt::PassId>& seq);
  /// Apply a flag-vector pipeline and measure. Thread-safe.
  EvalResult eval_flags(const opt::OptFlags& flags);

  /// Optimized module for a configuration (no caching; for inspection).
  ir::Module optimized(const std::vector<opt::PassId>& seq) const;

  /// Number of real simulations performed / cache hits observed. Atomic,
  /// so harnesses may poll them while workers are still evaluating.
  /// A thread that joins an in-flight simulation of the same fingerprint
  /// counts as a cache hit (it did not simulate).
  std::size_t simulations() const {
    return simulations_.load(std::memory_order_relaxed);
  }
  std::size_t cache_hits() const {
    return cache_hits_.load(std::memory_order_relaxed);
  }
  void set_cache_enabled(bool enabled) { cache_enabled_ = enabled; }

  const ir::Module& base() const { return base_; }
  const sim::MachineConfig& machine() const { return cfg_; }

 private:
  EvalResult measure(const ir::Module& optimized_mod);
  EvalResult simulate(const ir::Module& optimized_mod, std::uint64_t fp);

  /// One stripe of the memo cache. An entry is inserted not-ready by the
  /// thread that takes ownership of the simulation (the leader); followers
  /// wait on the shard cv. Erased (and broadcast) if the leader throws.
  struct Entry {
    bool ready = false;
    EvalResult result;
  };
  struct Shard {
    std::mutex mu;
    std::condition_variable cv;
    std::unordered_map<std::uint64_t, Entry> map;
  };
  static constexpr std::size_t kShards = 16;
  Shard& shard_of(std::uint64_t fp) { return shards_[fp % kShards]; }

  ir::Module base_;
  sim::MachineConfig cfg_;
  bool cache_enabled_ = true;
  std::array<Shard, kShards> shards_;
  std::atomic<std::size_t> simulations_{0};
  std::atomic<std::size_t> cache_hits_{0};
};

}  // namespace ilc::search
