#include "search/seedbank.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "ml/kmeans.hpp"
#include "support/assert.hpp"
#include "support/rng.hpp"

namespace ilc::search {

void PerfEstimator::fit(const std::vector<std::vector<opt::PassId>>& seqs,
                        const std::vector<double>& rel_cycles,
                        std::size_t min_rows) {
  ILC_CHECK(seqs.size() == rel_cycles.size());
  ok_ = false;
  if (seqs.size() < min_rows) return;
  ml::RegressionData data;
  for (std::size_t i = 0; i < seqs.size(); ++i)
    data.add(encode(seqs[i]), rel_cycles[i]);
  model_.fit(data);
  ok_ = true;
}

double PerfEstimator::predict(const std::vector<opt::PassId>& seq) const {
  ILC_CHECK(ok_);
  return model_.predict(encode(seq));
}

std::vector<double> PerfEstimator::encode(
    const std::vector<opt::PassId>& seq) {
  // Pass-count histogram + one-hot of the leading pass: order-insensitive
  // bulk plus a cheap positional signal. Fixed width regardless of
  // sequence length, so one model serves any space.
  std::vector<double> x(2 * opt::kNumPasses, 0.0);
  for (opt::PassId p : seq) x[static_cast<std::size_t>(p)] += 1.0;
  if (!seq.empty())
    x[opt::kNumPasses + static_cast<std::size_t>(seq.front())] = 1.0;
  return x;
}

SeedBank::SeedBank(const kb::KnowledgeBase& kb, const SequenceSpace& space,
                   SeedBankOptions opts) {
  // Gather per-program sequence records (insertion order preserved).
  struct ProgramData {
    std::vector<double> features;
    // (cycles, seq) for every sequence record of the program.
    std::vector<std::pair<std::uint64_t, std::vector<opt::PassId>>> runs;
    std::uint64_t baseline = 0;  // max observed cycles, the cold reference
  };
  std::vector<std::string> order;
  std::map<std::string, ProgramData> by_program;
  for (const auto& rec : kb.records()) {
    if (rec.kind != "sequence") continue;
    if (!opts.machine.empty() && rec.machine != opts.machine) continue;
    if (rec.program == opts.exclude_program) continue;
    auto seq = sequence_from_string(rec.config);
    if (!space.valid(seq)) continue;
    auto it = by_program.find(rec.program);
    if (it == by_program.end()) {
      if (rec.static_features.empty()) continue;
      order.push_back(rec.program);
      it = by_program.emplace(rec.program, ProgramData{}).first;
      it->second.features = rec.static_features;
    }
    it->second.runs.emplace_back(rec.cycles, std::move(seq));
    it->second.baseline = std::max(it->second.baseline, rec.cycles);
  }
  num_programs_ = order.size();
  if (order.empty()) return;

  // Normalize feature rows and cluster the programs.
  std::vector<std::vector<double>> rows;
  rows.reserve(order.size());
  std::vector<std::vector<double>> raw;
  for (const auto& name : order) raw.push_back(by_program[name].features);
  scaler_.fit(raw);
  for (const auto& r : raw) rows.push_back(scaler_.transform(r));

  support::Rng rng(opts.seed);
  const auto km = ml::kmeans(rows, std::max(1u, opts.clusters), rng);
  centroids_ = km.centroids;
  clusters_.resize(centroids_.size());

  // Per cluster: pool the member programs' top sequences (by relative
  // cycles), dedupe, keep the best `seeds_per_cluster`; fit the estimator
  // on *all* member runs.
  for (std::size_t ci = 0; ci < clusters_.size(); ++ci) {
    std::vector<std::vector<opt::PassId>> est_seqs;
    std::vector<double> est_rel;
    std::vector<std::pair<double, std::vector<opt::PassId>>> pool;
    for (std::size_t pi = 0; pi < order.size(); ++pi) {
      if (static_cast<std::size_t>(km.assignment[pi]) != ci) continue;
      auto& pd = by_program[order[pi]];
      const double base =
          pd.baseline > 0 ? static_cast<double>(pd.baseline) : 1.0;
      auto runs = pd.runs;
      std::stable_sort(runs.begin(), runs.end(),
                       [](const auto& a, const auto& b) {
                         return a.first < b.first;
                       });
      const std::size_t take = std::max<std::size_t>(
          1, static_cast<std::size_t>(
                 static_cast<double>(runs.size()) * opts.top_fraction));
      for (std::size_t i = 0; i < runs.size(); ++i) {
        const double rel = static_cast<double>(runs[i].first) / base;
        est_seqs.push_back(runs[i].second);
        est_rel.push_back(rel);
        if (i < take) pool.emplace_back(rel, runs[i].second);
      }
    }
    std::stable_sort(pool.begin(), pool.end(),
                     [](const auto& a, const auto& b) {
                       if (a.first != b.first) return a.first < b.first;
                       return a.second < b.second;
                     });
    std::set<std::vector<opt::PassId>> seen;
    for (auto& entry : pool) {
      if (clusters_[ci].seeds.size() >= opts.seeds_per_cluster) break;
      if (!seen.insert(entry.second).second) continue;
      clusters_[ci].seeds.push_back(std::move(entry));
    }
    clusters_[ci].estimator.fit(est_seqs, est_rel, opts.min_estimator_rows);
  }
}

std::size_t SeedBank::assign(
    const std::vector<double>& static_features) const {
  ILC_CHECK(!clusters_.empty());
  return ml::nearest_centroid(centroids_, scaler_.transform(static_features));
}

std::vector<std::vector<opt::PassId>> SeedBank::seeds_for(
    const std::vector<double>& static_features, std::size_t max_n) const {
  std::vector<std::vector<opt::PassId>> out;
  if (clusters_.empty()) return out;
  const auto& cluster = clusters_[assign(static_features)];
  for (const auto& [rel, seq] : cluster.seeds) {
    if (out.size() >= max_n) break;
    out.push_back(seq);
  }
  return out;
}

const PerfEstimator* SeedBank::estimator_for(
    const std::vector<double>& static_features) const {
  if (clusters_.empty()) return nullptr;
  const auto& cluster = clusters_[assign(static_features)];
  return cluster.estimator.ok() ? &cluster.estimator : nullptr;
}

Seeding SeedBank::seeding_for(const std::vector<double>& static_features,
                              std::size_t max_n) const {
  Seeding s;
  if (clusters_.empty()) return s;
  s.seeds = seeds_for(static_features, max_n);
  s.estimator = estimator_for(static_features);
  return s;
}

}  // namespace ilc::search
