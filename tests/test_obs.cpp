// ilc::obs tests: registry counters/gauges/histograms under concurrency,
// exporter formats, span nesting and cross-thread trace propagation, ring
// buffer wraparound, and the disabled-mode no-op guarantees.
#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/timer.hpp"
#include "obs/trace.hpp"

namespace {

using namespace ilc;

// ---- metrics registry ----------------------------------------------------

TEST(ObsMetrics, CounterExactUnderConcurrency) {
  obs::Registry reg;
  obs::Counter c = reg.counter("test.counter");
  constexpr unsigned kThreads = 8;
  constexpr std::uint64_t kPerThread = 100000;

  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kThreads; ++t)
    threads.emplace_back([&] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) c.add(1);
    });
  for (auto& t : threads) t.join();

  EXPECT_EQ(c.value(), kThreads * kPerThread);
  const obs::RegistrySnapshot snap = reg.snapshot();
  ASSERT_NE(snap.counter("test.counter"), nullptr);
  EXPECT_EQ(snap.counter("test.counter")->value, kThreads * kPerThread);
}

TEST(ObsMetrics, SameNameYieldsSameMetricDistinctRegistriesIsolate) {
  obs::Registry a, b;
  obs::Counter a1 = a.counter("shared.name");
  obs::Counter a2 = a.counter("shared.name");
  obs::Counter bc = b.counter("shared.name");
  a1.add(3);
  a2.add(4);
  bc.add(10);
  EXPECT_EQ(a1.value(), 7u);  // both handles hit the same counter
  EXPECT_EQ(bc.value(), 10u);  // the other registry is untouched
}

TEST(ObsMetrics, DefaultHandlesAreValidNoOps) {
  obs::Counter c;
  obs::Gauge g;
  obs::Histogram h;
  c.add(5);
  g.set(5);
  h.record(5);
  EXPECT_FALSE(c.valid());
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0);
  EXPECT_EQ(h.count(), 0u);
}

TEST(ObsMetrics, GaugeSetAddSub) {
  obs::Registry reg;
  obs::Gauge g = reg.gauge("test.gauge");
  g.set(10);
  g.add(5);
  g.sub(7);
  EXPECT_EQ(g.value(), 8);
  g.sub(20);
  EXPECT_EQ(g.value(), -12);  // gauges may legitimately go negative
}

TEST(ObsMetrics, HistogramSnapshotAndPercentiles) {
  obs::Registry reg;
  obs::Histogram h = reg.histogram("test.hist", {10, 100, 1000});
  for (std::uint64_t v = 1; v <= 100; ++v) h.record(v);
  h.record(5000);  // overflow bucket

  const obs::RegistrySnapshot snap = reg.snapshot();
  const obs::HistogramSnapshot* hs = snap.histogram("test.hist");
  ASSERT_NE(hs, nullptr);
  EXPECT_EQ(hs->count, 101u);
  EXPECT_EQ(hs->sum, 5050u + 5000u);
  EXPECT_EQ(hs->min, 1u);
  EXPECT_EQ(hs->max, 5000u);
  ASSERT_EQ(hs->counts.size(), 4u);  // 3 bounds + overflow
  EXPECT_EQ(hs->counts[0], 10u);     // 1..10
  EXPECT_EQ(hs->counts[1], 90u);     // 11..100
  EXPECT_EQ(hs->counts[2], 0u);
  EXPECT_EQ(hs->counts[3], 1u);

  const double p50 = hs->percentile(50.0);
  const double p95 = hs->percentile(95.0);
  EXPECT_GE(p50, static_cast<double>(hs->min));
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, static_cast<double>(hs->max));
  // p50 of 1..100 + one outlier lands in the 11..100 bucket.
  EXPECT_GT(p50, 10.0);
  EXPECT_LE(p50, 100.0);
}

TEST(ObsMetrics, HistogramConsistentUnderConcurrency) {
  obs::Registry reg;
  obs::Histogram h = reg.histogram("test.conc_hist", {8, 64, 512});
  constexpr unsigned kThreads = 8;
  constexpr std::uint64_t kPerThread = 20000;
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kThreads; ++t)
    threads.emplace_back([&, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i)
        h.record((t * kPerThread + i) % 1000);
    });
  for (auto& t : threads) t.join();

  const obs::RegistrySnapshot snap = reg.snapshot();
  const obs::HistogramSnapshot* hs = snap.histogram("test.conc_hist");
  ASSERT_NE(hs, nullptr);
  EXPECT_EQ(hs->count, kThreads * kPerThread);
  std::uint64_t bucket_total = 0;
  for (std::uint64_t c : hs->counts) bucket_total += c;
  EXPECT_EQ(bucket_total, hs->count);
  EXPECT_EQ(hs->min, 0u);
  EXPECT_EQ(hs->max, 999u);
}

TEST(ObsMetrics, ResetZeroesButKeepsHandles) {
  obs::Registry reg;
  obs::Counter c = reg.counter("test.reset");
  obs::Histogram h = reg.histogram("test.reset_hist");
  c.add(42);
  h.record(7);
  reg.reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(h.count(), 0u);
  c.add(1);  // handle still live after reset
  EXPECT_EQ(c.value(), 1u);
}

TEST(ObsMetrics, ExponentialBounds) {
  const std::vector<std::uint64_t> b = obs::exponential_bounds(1, 2.0, 5);
  EXPECT_EQ(b, (std::vector<std::uint64_t>{1, 2, 4, 8, 16}));
  EXPECT_FALSE(obs::default_us_bounds().empty());
}

TEST(ObsMetrics, JsonExportersContainEveryMetric) {
  obs::Registry reg;
  reg.counter("json.c").add(3);
  reg.gauge("json.g").set(-2);
  reg.histogram("json.h", {10}).record(4);
  const obs::RegistrySnapshot snap = reg.snapshot();

  const std::string lines = obs::to_json_lines(snap);
  EXPECT_NE(lines.find("\"json.c\""), std::string::npos);
  EXPECT_NE(lines.find("\"json.g\""), std::string::npos);
  EXPECT_NE(lines.find("\"json.h\""), std::string::npos);
  EXPECT_NE(lines.find("\"counter\""), std::string::npos);

  const std::string obj = obs::to_json_object(snap);
  EXPECT_EQ(obj.front(), '{');
  EXPECT_EQ(obj.back(), '}');
  EXPECT_NE(obj.find("\"counters\""), std::string::npos);
  EXPECT_NE(obj.find("\"gauges\""), std::string::npos);
  EXPECT_NE(obj.find("\"histograms\""), std::string::npos);
}

TEST(ObsMetrics, PrometheusExportFormat) {
  obs::Registry reg;
  reg.counter("svc.requests").add(7);
  reg.histogram("svc.latency-us", {10, 100}).record(50);
  const std::string prom = obs::to_prometheus(reg.snapshot());

  // Names are prefixed and sanitized: '.' and '-' become '_'.
  EXPECT_NE(prom.find("ilc_svc_requests 7"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE ilc_svc_requests counter"), std::string::npos);
  EXPECT_NE(prom.find("ilc_svc_latency_us_bucket{le=\"10\"} 0"),
            std::string::npos);
  EXPECT_NE(prom.find("ilc_svc_latency_us_bucket{le=\"100\"} 1"),
            std::string::npos);
  EXPECT_NE(prom.find("ilc_svc_latency_us_bucket{le=\"+Inf\"} 1"),
            std::string::npos);
  EXPECT_NE(prom.find("ilc_svc_latency_us_sum 50"), std::string::npos);
  EXPECT_NE(prom.find("ilc_svc_latency_us_count 1"), std::string::npos);
}

// ---- profiling timers ----------------------------------------------------

TEST(ObsTimer, RecordsWhenEnabledSkipsWhenDisabled) {
  obs::Registry reg;
  obs::Histogram h = reg.histogram("test.timer_us");
  {
    obs::ScopedTimerUs t(h);
  }
  EXPECT_EQ(h.count(), 1u);

  obs::set_profiling_enabled(false);
  {
    obs::ScopedTimerUs t(h);
  }
  obs::set_profiling_enabled(true);
  EXPECT_EQ(h.count(), 1u);  // disabled timer recorded nothing
}

// ---- tracing -------------------------------------------------------------

class ObsTrace : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::Tracer::set_enabled(true);
    obs::Tracer::clear();
  }
  void TearDown() override {
    obs::Tracer::set_enabled(false);
    obs::Tracer::clear();
    obs::Tracer::set_ring_capacity(4096);
  }

  static const obs::SpanRecord* find(const std::vector<obs::SpanRecord>& recs,
                                     const std::string& name) {
    for (const auto& r : recs)
      if (r.name == name) return &r;
    return nullptr;
  }
};

TEST_F(ObsTrace, NestedSpansShareTraceAndLinkParents) {
  obs::SpanContext outer_ctx, inner_ctx;
  {
    obs::Span outer("outer");
    outer_ctx = outer.context();
    EXPECT_TRUE(outer_ctx.valid());
    EXPECT_EQ(obs::Tracer::current().span_id, outer_ctx.span_id);
    {
      obs::Span inner("inner");
      inner_ctx = inner.context();
      inner.annotate("key", "value");
    }
    // Current restored to the outer span after the inner one closes.
    EXPECT_EQ(obs::Tracer::current().span_id, outer_ctx.span_id);
  }
  EXPECT_FALSE(obs::Tracer::current().valid());

  const std::vector<obs::SpanRecord> recs = obs::Tracer::records();
  const obs::SpanRecord* outer = find(recs, "outer");
  const obs::SpanRecord* inner = find(recs, "inner");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(outer->trace_id, inner->trace_id);
  EXPECT_EQ(inner->parent_id, outer->span_id);
  EXPECT_EQ(outer->parent_id, 0u);
  ASSERT_EQ(inner->annotations.size(), 1u);
  EXPECT_EQ(inner->annotations[0].first, "key");
  EXPECT_EQ(inner->annotations[0].second, "value");
}

TEST_F(ObsTrace, ExplicitInvalidParentRootsFreshTrace) {
  obs::Span a("a");
  obs::Span b("b", obs::SpanContext{});
  EXPECT_NE(a.context().trace_id, b.context().trace_id);
  EXPECT_NE(a.context().span_id, b.context().span_id);
}

TEST_F(ObsTrace, TraceScopeAdoptsContextAcrossThreads) {
  obs::SpanContext root_ctx;
  {
    obs::Span root("root");
    root_ctx = root.context();
    std::thread worker([&] {
      EXPECT_FALSE(obs::Tracer::current().valid());
      obs::TraceScope scope(root_ctx);
      EXPECT_EQ(obs::Tracer::current().span_id, root_ctx.span_id);
      obs::Span child("worker_child");
      EXPECT_EQ(child.context().trace_id, root_ctx.trace_id);
    });
    worker.join();
  }
  const std::vector<obs::SpanRecord> recs = obs::Tracer::records();
  const obs::SpanRecord* root = find(recs, "root");
  const obs::SpanRecord* child = find(recs, "worker_child");
  ASSERT_NE(root, nullptr);
  ASSERT_NE(child, nullptr);  // exited thread's buffer is still drainable
  EXPECT_EQ(child->trace_id, root->trace_id);
  EXPECT_EQ(child->parent_id, root->span_id);
  EXPECT_NE(child->tid, root->tid);
}

TEST_F(ObsTrace, ManualRecordAttachesToParent) {
  using Clock = std::chrono::steady_clock;
  obs::Span root("manual_root");
  const Clock::time_point t0 = Clock::now() - std::chrono::milliseconds(5);
  obs::Tracer::record("manual_wait", root.context(), t0, Clock::now(),
                      {{"queue", "default"}});
  const std::vector<obs::SpanRecord> recs = obs::Tracer::records();
  const obs::SpanRecord* rec = find(recs, "manual_wait");
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->trace_id, root.context().trace_id);
  EXPECT_EQ(rec->parent_id, root.context().span_id);
  EXPECT_GE(rec->dur_us, 4000u);  // the 5ms we backdated, minus rounding
}

TEST_F(ObsTrace, RingBufferKeepsNewestOnWraparound) {
  obs::Tracer::set_ring_capacity(4);
  using Clock = std::chrono::steady_clock;
  static const char* names[10] = {"w0", "w1", "w2", "w3", "w4",
                                  "w5", "w6", "w7", "w8", "w9"};
  for (int i = 0; i < 10; ++i) {
    const Clock::time_point now = Clock::now();
    obs::Tracer::record(names[i], obs::SpanContext{}, now, now);
  }
  const std::vector<obs::SpanRecord> recs = obs::Tracer::records();
  ASSERT_EQ(recs.size(), 4u);
  // Oldest-first: the four newest records, in recording order.
  EXPECT_EQ(recs[0].name, "w6");
  EXPECT_EQ(recs[1].name, "w7");
  EXPECT_EQ(recs[2].name, "w8");
  EXPECT_EQ(recs[3].name, "w9");
}

TEST_F(ObsTrace, DisabledSpansAreInertAndRecordNothing) {
  obs::Tracer::set_enabled(false);
  {
    obs::Span s("ghost");
    EXPECT_FALSE(s.active());
    EXPECT_FALSE(s.context().valid());
    s.annotate("k", "v");
    EXPECT_FALSE(obs::Tracer::current().valid());
  }
  EXPECT_TRUE(obs::Tracer::records().empty());
}

TEST_F(ObsTrace, ChromeTraceJsonShape) {
  {
    obs::Span s("chrome_span");
    s.annotate("note", "hello \"world\"");
  }
  const std::string json = obs::Tracer::drain_chrome_trace();
  EXPECT_EQ(json.find("{\"traceEvents\":["), 0u);
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"name\":\"chrome_span\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"trace_id\":"), std::string::npos);
  EXPECT_NE(json.find("\"note\":\"hello \\\"world\\\"\""), std::string::npos);
  // Drained: a second drain is empty.
  EXPECT_EQ(obs::Tracer::drain_chrome_trace(), "{\"traceEvents\":[\n]}");
}

}  // namespace
