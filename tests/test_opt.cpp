// Optimizer correctness: the central property suite. For every pass and
// every workload, the optimized module must (a) verify and (b) return the
// same checksum — plus targeted unit tests of each transformation and
// fuzzed random pass sequences (the same population Fig. 2 searches over).
#include <gtest/gtest.h>

#include "ir/analysis.hpp"
#include "ir/builder.hpp"
#include "ir/fingerprint.hpp"
#include "ir/printer.hpp"
#include "ir/verifier.hpp"
#include "opt/pass.hpp"
#include "opt/pipelines.hpp"
#include "sim/interpreter.hpp"
#include "support/rng.hpp"
#include "workloads/workloads.hpp"

namespace {

using namespace ilc;
using namespace ilc::ir;
using opt::PassId;

std::int64_t run_checksum(const Module& m) {
  sim::Simulator s(m, sim::amd_like());
  return s.run().ret;
}

// --- every pass preserves semantics on every workload -------------------

struct PassWorkloadCase {
  std::string workload;
  unsigned pass;
};

class PassPreservation
    : public ::testing::TestWithParam<PassWorkloadCase> {};

TEST_P(PassPreservation, ChecksumAndVerifierInvariant) {
  const auto& param = GetParam();
  wl::Workload w = wl::make_workload(param.workload);
  const auto id = static_cast<PassId>(param.pass);
  opt::run_pass(id, w.module);
  ASSERT_EQ(verify(w.module), "") << opt::pass_name(id);
  EXPECT_EQ(run_checksum(w.module), w.expected_checksum)
      << opt::pass_name(id) << " broke " << param.workload;
}

std::vector<PassWorkloadCase> all_pass_workload_cases() {
  std::vector<PassWorkloadCase> cases;
  for (const auto& name : wl::workload_names())
    for (unsigned p = 0; p < opt::kNumPasses; ++p)
      cases.push_back({name, p});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    AllPassesAllWorkloads, PassPreservation,
    ::testing::ValuesIn(all_pass_workload_cases()),
    [](const ::testing::TestParamInfo<PassWorkloadCase>& info) {
      return info.param.workload + "_" +
             opt::pass_name(static_cast<PassId>(info.param.pass));
    });

// --- random sequences (the Fig. 2 population) ---------------------------

class SequenceFuzz : public ::testing::TestWithParam<int> {};

TEST_P(SequenceFuzz, RandomLength5SequencePreservesSemantics) {
  support::Rng rng(1000 + GetParam());
  const auto space = opt::sequence_space();
  // Mirror the paper's constraint: unrolling appears at most once.
  std::vector<PassId> seq;
  bool used_unroll = false;
  while (seq.size() < 5) {
    const PassId id = space[rng.next_below(space.size())];
    if (opt::is_unroll(id)) {
      if (used_unroll) continue;
      used_unroll = true;
    }
    seq.push_back(id);
  }
  for (const auto& name : {"adpcm", "mcf_lite", "crc32"}) {
    wl::Workload w = wl::make_workload(name);
    opt::run_sequence(w.module, seq);
    ASSERT_EQ(verify(w.module), "") << name;
    EXPECT_EQ(run_checksum(w.module), w.expected_checksum) << name;
  }
}

INSTANTIATE_TEST_SUITE_P(Fuzz, SequenceFuzz, ::testing::Range(0, 12));

TEST(Pipelines, FastPipelinePreservesEveryWorkload) {
  for (const auto& name : wl::workload_names()) {
    wl::Workload w = wl::make_workload(name);
    opt::run_sequence(w.module, opt::fast_pipeline());
    ASSERT_EQ(verify(w.module), "") << name;
    EXPECT_EQ(run_checksum(w.module), w.expected_checksum) << name;
  }
}

TEST(Pipelines, FastActuallySpeedsUpTheSuite) {
  // The sanity bar for the whole optimizer: FAST must beat -O0 broadly.
  unsigned wins = 0, total = 0;
  for (const auto& name : wl::workload_names()) {
    wl::Workload base = wl::make_workload(name);
    wl::Workload fast = wl::make_workload(name);
    opt::run_sequence(fast.module, opt::fast_pipeline());
    sim::Simulator s0(base.module, sim::amd_like());
    sim::Simulator s1(fast.module, sim::amd_like());
    const auto c0 = s0.run().cycles;
    const auto c1 = s1.run().cycles;
    ++total;
    if (c1 < c0) ++wins;
  }
  EXPECT_GE(wins * 100, total * 75)
      << "FAST should speed up at least 75% of the suite";
}

TEST(Pipelines, FlagEncodingRoundTrips) {
  support::Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    const auto bits =
        static_cast<std::uint32_t>(rng.next_below(opt::OptFlags::kEncodings));
    const opt::OptFlags f = opt::OptFlags::decode(bits);
    EXPECT_EQ(opt::OptFlags::decode(f.encode()), f);
  }
  EXPECT_EQ(opt::o0_flags().to_string(), "O0");
  EXPECT_NE(opt::fast_flags().to_string().find("unroll4"), std::string::npos);
}

// --- targeted per-pass unit tests ----------------------------------------

TEST(ConstProp, FoldsAcrossBlocks) {
  Module m;
  FunctionBuilder b(m, "main", 0);
  Reg x = b.imm(21);
  BlockId next = b.new_block();
  b.jump(next);
  b.switch_to(next);
  Reg y = b.mul(x, b.imm(2));
  b.ret(y);
  b.finish();
  EXPECT_TRUE(opt::const_prop(m.function(0), m));
  // The multiply must have become a LoadImm 42.
  bool found = false;
  for (const auto& bb : m.function(0).blocks)
    for (const auto& inst : bb.insts)
      if (inst.op == Opcode::LoadImm && inst.imm == 42) found = true;
  EXPECT_TRUE(found);
  EXPECT_EQ(run_checksum(m), 42);
}

TEST(ConstProp, FoldsConstantBranches) {
  Module m;
  FunctionBuilder b(m, "main", 0);
  Reg c = b.imm(1);
  BlockId t = b.new_block(), f = b.new_block();
  b.br(c, t, f);
  b.switch_to(t);
  b.ret(b.imm(10));
  b.switch_to(f);
  b.ret(b.imm(20));
  b.finish();
  EXPECT_TRUE(opt::const_prop(m.function(0), m));
  EXPECT_EQ(m.function(0).blocks[0].terminator().op, Opcode::Jump);
  EXPECT_EQ(run_checksum(m), 10);
}

TEST(ConstProp, KeepsMergePointsConservative) {
  // x is 1 on one path and 2 on the other: must NOT fold the use.
  Module m;
  FunctionBuilder b(m, "main", 1);
  Reg x = b.fresh();
  BlockId t = b.new_block(), f = b.new_block(), join = b.new_block();
  b.br(b.arg(0), t, f);
  b.switch_to(t);
  b.imm_to(x, 1);
  b.jump(join);
  b.switch_to(f);
  b.imm_to(x, 2);
  b.jump(join);
  b.switch_to(join);
  b.ret(b.mul_i(x, 10));
  b.finish();
  opt::const_prop(m.function(0), m);
  sim::Simulator s(m, sim::amd_like());
  EXPECT_EQ(s.call("main", {1}).ret, 10);
  EXPECT_EQ(s.call("main", {0}).ret, 20);
}

TEST(ConstProp, DoesNotFoldTaggedImmediates) {
  Module m;
  RecordType t;
  t.fields = {{"p", FieldKind::Ptr}, {"v", FieldKind::I64}};
  const RecordId rec = m.add_record(t);
  Global g;
  g.name = "cells";
  g.kind = GlobalKind::RecordArray;
  g.record = rec;
  g.count = 4;
  const GlobalId gid = m.add_global(g);
  FunctionBuilder b(m, "main", 0);
  Reg addr = b.record_elem_addr(gid, b.imm(2));
  b.ret(b.load_field(addr, rec, 1));
  b.finish();
  opt::const_prop(m.function(0), m);
  // The tagged stride LoadImm must survive so PtrCompress can re-patch it.
  bool tagged_alive = false;
  for (const auto& bb : m.function(0).blocks)
    for (const auto& inst : bb.insts)
      if (inst.tag == ImmTag::RecordStride) tagged_alive = true;
  EXPECT_TRUE(tagged_alive);
  // And the whole thing still composes with compression.
  opt::compress_pointers(m);
  opt::const_prop(m.function(0), m);
  EXPECT_EQ(verify(m), "");
}

TEST(CopyProp, RewritesThroughCopies) {
  Module m;
  FunctionBuilder b(m, "main", 0);
  Reg x = b.imm(5);
  Reg y = b.mov(x);
  Reg z = b.mov(y);
  b.ret(b.add(z, z));
  b.finish();
  EXPECT_TRUE(opt::copy_prop(m.function(0)));
  const Instr& add = m.function(0).blocks[0].insts[3];
  EXPECT_EQ(add.a, x);
  EXPECT_EQ(add.b, x);
  EXPECT_EQ(run_checksum(m), 10);
}

TEST(CopyProp, StopsAtRedefinition) {
  Module m;
  FunctionBuilder b(m, "main", 0);
  Reg x = b.fresh();
  b.imm_to(x, 5);
  Reg y = b.mov(x);
  b.imm_to(x, 9);          // x redefined: y must NOT alias x anymore
  b.ret(b.add(y, x));      // 5 + 9
  b.finish();
  opt::copy_prop(m.function(0));
  EXPECT_EQ(run_checksum(m), 14);
}

TEST(Cse, ReusesPureExpressions) {
  Module m;
  FunctionBuilder b(m, "main", 0);
  Reg x = b.imm(6);
  Reg y = b.imm(7);
  Reg a = b.mul(x, y);
  Reg c = b.mul(x, y);  // duplicate
  b.ret(b.add(a, c));
  b.finish();
  EXPECT_TRUE(opt::local_cse(m.function(0)));
  EXPECT_EQ(m.function(0).blocks[0].insts[3].op, Opcode::Mov);
  EXPECT_EQ(run_checksum(m), 84);
}

TEST(Cse, CommutativeOperandsMatch) {
  Module m;
  FunctionBuilder b(m, "main", 0);
  Reg x = b.imm(6);
  Reg y = b.imm(7);
  Reg a = b.add(x, y);
  Reg c = b.add(y, x);  // same value, swapped operands
  b.ret(b.sub(a, c));
  b.finish();
  EXPECT_TRUE(opt::local_cse(m.function(0)));
  EXPECT_EQ(run_checksum(m), 0);
}

TEST(Cse, LoadsInvalidatedByStores) {
  Module m;
  Global g;
  g.name = "buf";
  g.elem_width = 8;
  g.count = 1;
  g.init = {5};
  const GlobalId buf = m.add_global(g);
  FunctionBuilder b(m, "main", 0);
  Reg base = b.global_addr(buf);
  Reg v1 = b.load(base, 0, MemWidth::W8);
  b.store(base, 0, b.imm(9), MemWidth::W8);
  Reg v2 = b.load(base, 0, MemWidth::W8);  // must NOT be CSE'd with v1
  b.ret(b.add(v1, v2));
  b.finish();
  opt::local_cse(m.function(0));
  EXPECT_EQ(run_checksum(m), 14);
}

TEST(Cse, RedundantLoadsWithoutInterveningStoreMerge) {
  Module m;
  Global g;
  g.name = "buf";
  g.elem_width = 8;
  g.count = 1;
  g.init = {5};
  const GlobalId buf = m.add_global(g);
  FunctionBuilder b(m, "main", 0);
  Reg base = b.global_addr(buf);
  Reg v1 = b.load(base, 0, MemWidth::W8);
  Reg v2 = b.load(base, 0, MemWidth::W8);
  b.ret(b.add(v1, v2));
  b.finish();
  EXPECT_TRUE(opt::local_cse(m.function(0)));
  EXPECT_EQ(run_checksum(m), 10);
}

TEST(Dce, RemovesDeadChainsKeepsStores) {
  Module m;
  Global g;
  g.name = "buf";
  g.elem_width = 8;
  g.count = 1;
  const GlobalId buf = m.add_global(g);
  FunctionBuilder b(m, "main", 0);
  Reg dead1 = b.imm(1);
  Reg dead2 = b.add(dead1, dead1);  // feeds nothing live
  (void)dead2;
  Reg base = b.global_addr(buf);
  b.store(base, 0, b.imm(3), MemWidth::W8);
  b.ret(b.load(base, 0, MemWidth::W8));
  b.finish();
  const std::size_t before = m.function(0).size();
  EXPECT_TRUE(opt::dce(m.function(0)));
  EXPECT_LT(m.function(0).size(), before);
  EXPECT_EQ(run_checksum(m), 3);
}

TEST(SimplifyCfg, MergesStraightLineChains) {
  Module m;
  FunctionBuilder b(m, "main", 0);
  Reg x = b.imm(4);
  BlockId b1 = b.new_block(), b2 = b.new_block();
  b.jump(b1);
  b.switch_to(b1);
  Reg y = b.add_i(x, 1);
  b.jump(b2);
  b.switch_to(b2);
  b.ret(y);
  b.finish();
  EXPECT_TRUE(opt::simplify_cfg(m.function(0)));
  EXPECT_EQ(m.function(0).blocks.size(), 1u);
  EXPECT_EQ(run_checksum(m), 5);
}

TEST(SimplifyCfg, RemovesUnreachableBlocks) {
  Module m;
  FunctionBuilder b(m, "main", 0);
  b.ret(b.imm(1));
  BlockId orphan = b.new_block();
  b.switch_to(orphan);
  b.ret(b.imm(2));
  b.finish();
  EXPECT_TRUE(opt::simplify_cfg(m.function(0)));
  EXPECT_EQ(m.function(0).blocks.size(), 1u);
}

TEST(Licm, HoistsInvariantComputation) {
  Module m;
  FunctionBuilder b(m, "main", 1);
  Reg bound = b.imm(100);
  Reg acc = b.fresh();
  b.imm_to(acc, 0);
  Reg i = b.fresh();
  b.imm_to(i, 0);
  BlockId head = b.new_block(), body = b.new_block(), exit = b.new_block();
  b.jump(head);
  b.switch_to(head);
  b.br(b.cmp_lt(i, bound), body, exit);
  b.switch_to(body);
  Reg inv = b.mul(b.arg(0), b.arg(0));  // invariant
  b.mov_to(acc, b.add(acc, inv));
  b.mov_to(i, b.add_i(i, 1));
  b.jump(head);
  b.switch_to(exit);
  b.ret(acc);
  b.finish();

  EXPECT_TRUE(opt::licm(m.function(0)));
  // The multiply must now be outside the loop.
  const auto loops = find_loops(m.function(0));
  ASSERT_FALSE(loops.empty());
  for (BlockId lb : loops[0].blocks)
    for (const Instr& inst : m.function(0).blocks[lb].insts)
      EXPECT_NE(inst.op, Opcode::Mul);
  sim::Simulator s(m, sim::amd_like());
  EXPECT_EQ(s.call("main", {3}).ret, 900);
}

TEST(Licm, DoesNotHoistVariantComputation) {
  wl::Workload w = wl::make_workload("fir");
  const std::uint64_t before = fingerprint(w.module);
  opt::licm(w.module.function(w.module.find_function("main")));
  // Whatever LICM did, semantics must hold (checksum check), and variant
  // loads must still be in the loop: checksum is the strong check here.
  (void)before;
  EXPECT_EQ(run_checksum(w.module), w.expected_checksum);
}

TEST(StrengthRed, MulByPowerOfTwoBecomesShift) {
  Module m;
  FunctionBuilder b(m, "main", 1);
  b.ret(b.mul(b.arg(0), b.imm(8)));
  b.finish();
  EXPECT_TRUE(opt::strength_reduce(m.function(0)));
  bool has_shl = false, has_mul = false;
  for (const auto& inst : m.function(0).blocks[0].insts) {
    has_shl |= inst.op == Opcode::Shl;
    has_mul |= inst.op == Opcode::Mul;
  }
  EXPECT_TRUE(has_shl);
  EXPECT_FALSE(has_mul);
  sim::Simulator s(m, sim::amd_like());
  EXPECT_EQ(s.call("main", {5}).ret, 40);
  EXPECT_EQ(s.call("main", {-5}).ret, -40);
}

TEST(StrengthRed, MulBy9BecomesShiftAdd) {
  Module m;
  FunctionBuilder b(m, "main", 1);
  b.ret(b.mul(b.imm(9), b.arg(0)));
  b.finish();
  EXPECT_TRUE(opt::strength_reduce(m.function(0)));
  sim::Simulator s(m, sim::amd_like());
  EXPECT_EQ(s.call("main", {7}).ret, 63);
}

TEST(Peephole, AlgebraicIdentities) {
  Module m;
  FunctionBuilder b(m, "main", 1);
  Reg zero = b.imm(0);
  Reg a = b.add(b.arg(0), zero);   // x + 0
  Reg c = b.xor_(a, a);            // x ^ x = 0
  Reg d = b.or_(c, b.arg(0));      // 0 | x
  b.ret(d);
  b.finish();
  EXPECT_TRUE(opt::peephole(m.function(0)));
  sim::Simulator s(m, sim::amd_like());
  EXPECT_EQ(s.call("main", {123}).ret, 123);
}

TEST(Inline, LeafCallDisappears) {
  Module m;
  FuncId leaf;
  {
    FunctionBuilder b(m, "sq", 1);
    b.ret(b.mul(b.arg(0), b.arg(0)));
    leaf = b.finish();
  }
  {
    FunctionBuilder b(m, "main", 0);
    Reg r = b.call(leaf, {b.imm(6)});
    b.ret(r);
    b.finish();
  }
  EXPECT_TRUE(opt::inline_calls(m));
  for (const auto& bb : m.function(m.find_function("main")).blocks)
    for (const auto& inst : bb.insts) EXPECT_NE(inst.op, Opcode::Call);
  EXPECT_EQ(verify(m), "");
  EXPECT_EQ(run_checksum(m), 36);
}

TEST(Inline, FrameOffsetsDoNotCollide) {
  Module m;
  FuncId leaf;
  {
    FunctionBuilder b(m, "spill", 1, 8);
    Reg slot = b.frame_addr(0);
    b.store(slot, 0, b.arg(0), MemWidth::W8);
    b.ret(b.load(slot, 0, MemWidth::W8));
    leaf = b.finish();
  }
  {
    FunctionBuilder b(m, "main", 0, 8);
    Reg slot = b.frame_addr(0);
    b.store(slot, 0, b.imm(100), MemWidth::W8);
    Reg r = b.call(leaf, {b.imm(42)});
    b.ret(b.add(r, b.load(slot, 0, MemWidth::W8)));
    b.finish();
  }
  EXPECT_TRUE(opt::inline_calls(m));
  EXPECT_EQ(verify(m), "");
  EXPECT_EQ(run_checksum(m), 142);
}

TEST(Inline, RecursionNotInlined) {
  Module m;
  FunctionBuilder b(m, "fib", 1);
  Reg n = b.arg(0);
  BlockId base = b.new_block(), rec = b.new_block();
  b.br(b.cmp_lt_i(n, 2), base, rec);
  b.switch_to(base);
  b.ret(n);
  b.switch_to(rec);
  Reg f1 = b.call(0, {b.sub_i(n, 1)});
  Reg f2 = b.call(0, {b.sub_i(n, 2)});
  b.ret(b.add(f1, f2));
  b.finish();
  EXPECT_FALSE(opt::inline_calls(m));
}

TEST(Schedule, SeparatesProducerFromConsumer) {
  Module m;
  FunctionBuilder b(m, "main", 0);
  Reg a = b.imm(3);
  Reg c = b.mul(a, a);      // long latency
  Reg d = b.add(c, a);      // depends on c
  Reg e = b.imm(50);        // independent work
  Reg f = b.imm(60);
  b.ret(b.add(d, b.add(e, f)));
  b.finish();
  wl::Workload w;  // unused
  (void)w;
  Module before = m;
  const bool changed = opt::schedule_blocks(m.function(0));
  EXPECT_EQ(run_checksum(m), run_checksum(before));
  if (changed) {
    sim::Simulator s1(before, sim::amd_like());
    sim::Simulator s2(m, sim::amd_like());
    EXPECT_LE(s2.run().cycles, s1.run().cycles);
  }
}

TEST(Unroll, DuplicatesInnermostBody) {
  wl::Workload w = wl::make_workload("fir");
  Function& fn = w.module.function(w.module.find_function("main"));
  const std::size_t before = fn.size();
  EXPECT_TRUE(opt::unroll_loops(fn, 4));
  EXPECT_GT(fn.size(), 2 * before / 1);  // substantially larger code
  EXPECT_EQ(verify(w.module), "");
  EXPECT_EQ(run_checksum(w.module), w.expected_checksum);
}

TEST(Unroll, ComposesWithSimplifyAndScheduleForSpeed) {
  wl::Workload base = wl::make_workload("fir");
  wl::Workload opt_w = wl::make_workload("fir");
  Function& fn = opt_w.module.function(opt_w.module.find_function("main"));
  opt::unroll_loops(fn, 4);
  opt::simplify_cfg(fn);
  opt::schedule_blocks(fn);
  EXPECT_EQ(run_checksum(opt_w.module), base.expected_checksum);
  sim::Simulator s0(base.module, sim::amd_like());
  sim::Simulator s1(opt_w.module, sim::amd_like());
  EXPECT_LT(s1.run().cycles, s0.run().cycles);
}

TEST(Prefetch, HelpsStreamsHurtsChases) {
  // Streaming phase benefits; mcf's pointer chase must not.
  wl::Workload stream = wl::make_workload("dotprod");
  wl::Workload pf = wl::make_workload("dotprod");
  for (auto& fn : pf.module.functions()) opt::insert_prefetch(fn);
  EXPECT_EQ(run_checksum(pf.module), stream.expected_checksum);
  sim::Simulator s0(stream.module, sim::amd_like());
  sim::Simulator s1(pf.module, sim::amd_like());
  const auto base_cycles = s0.run().cycles;
  const auto pf_cycles = s1.run().cycles;
  EXPECT_LT(pf_cycles, base_cycles) << "prefetch should help streaming";
}

TEST(PtrCompress, ShrinksMcfWorkingSetAndCutsMisses) {
  wl::Workload base = wl::make_workload("mcf_lite");
  wl::Workload comp = wl::make_workload("mcf_lite");
  EXPECT_TRUE(opt::compress_pointers(comp.module));
  EXPECT_FALSE(opt::compress_pointers(comp.module));  // idempotent
  ASSERT_EQ(verify(comp.module), "");
  EXPECT_EQ(run_checksum(comp.module), base.expected_checksum);

  sim::Simulator s0(base.module, sim::amd_like());
  sim::Simulator s1(comp.module, sim::amd_like());
  const auto r0 = s0.run();
  const auto r1 = s1.run();
  EXPECT_LT(r1.counters[sim::L1_TCM], r0.counters[sim::L1_TCM]);
  EXPECT_LT(r1.counters[sim::L2_TCA], r0.counters[sim::L2_TCA]);
  EXPECT_LT(r1.cycles, r0.cycles);
}

TEST(Reassoc, BalancesLongChainAndSpeedsUpDualIssue) {
  // acc = ((((((a+b)+c)+d)+e)+f)+g)+h — serial depth 7; balanced depth 3.
  auto build = [] {
    Module m;
    FunctionBuilder b(m, "main", 0);
    std::vector<Reg> leaves;
    for (int i = 0; i < 8; ++i) leaves.push_back(b.imm(i + 1));
    Reg acc = leaves[0];
    for (int i = 1; i < 8; ++i) acc = b.add(acc, leaves[i]);
    // Pad with an independent long chain so the block isn't issue-bound.
    Reg pad = b.imm(100);
    for (int i = 0; i < 8; ++i) pad = b.mul(pad, b.imm(1));
    b.ret(b.add(acc, b.and_i(pad, 0)));
    b.finish();
    return m;
  };
  Module plain = build();
  Module balanced = build();
  EXPECT_TRUE(opt::reassociate(balanced.function(0)));
  ASSERT_EQ(verify(balanced), "");
  EXPECT_EQ(run_checksum(balanced), run_checksum(plain));  // = 36
  EXPECT_EQ(run_checksum(balanced), 36);

  // With the list scheduler on top, the balanced form must win cycles on
  // the dual-issue machine.
  opt::schedule_blocks(plain.function(0));
  opt::schedule_blocks(balanced.function(0));
  sim::Simulator s0(plain, sim::amd_like());
  sim::Simulator s1(balanced, sim::amd_like());
  EXPECT_LT(s1.run().cycles, s0.run().cycles);
}

TEST(Reassoc, LeavesMultiUseIntermediatesAlone) {
  Module m;
  FunctionBuilder b(m, "main", 0);
  Reg a = b.imm(1), c = b.imm(2), d = b.imm(3);
  Reg t1 = b.add(a, c);
  Reg t2 = b.add(t1, d);
  // t1 used twice: the chain through it must not be consumed.
  b.ret(b.add(t2, t1));
  b.finish();
  const std::int64_t before = run_checksum(m);
  opt::reassociate(m.function(0));
  ASSERT_EQ(verify(m), "");
  EXPECT_EQ(run_checksum(m), before);
}

TEST(Reassoc, PreservesNonCommutativeOps) {
  Module m;
  FunctionBuilder b(m, "main", 0);
  Reg acc = b.imm(1000);
  for (int i = 0; i < 6; ++i) acc = b.sub(acc, b.imm(i + 1));
  b.ret(acc);
  b.finish();
  const std::int64_t before = run_checksum(m);
  EXPECT_FALSE(opt::reassociate(m.function(0)));  // sub is not in scope
  EXPECT_EQ(run_checksum(m), before);
}

TEST(Reassoc, WorksAcrossEveryAssociativeOpcode) {
  for (Opcode op : {Opcode::Add, Opcode::Mul, Opcode::And, Opcode::Or,
                    Opcode::Xor, Opcode::Min, Opcode::Max}) {
    Module m;
    FunctionBuilder b(m, "main", 0);
    Reg acc = b.imm(13);
    for (int i = 0; i < 6; ++i) acc = b.binop(op, acc, b.imm(7 + i));
    b.ret(acc);
    b.finish();
    const std::int64_t before = run_checksum(m);
    opt::reassociate(m.function(0));
    ASSERT_EQ(verify(m), "") << opcode_name(op);
    EXPECT_EQ(run_checksum(m), before) << opcode_name(op);
  }
}

TEST(PassRegistry, NamesRoundTrip) {
  for (unsigned i = 0; i < opt::kNumPasses; ++i) {
    const auto id = static_cast<PassId>(i);
    EXPECT_EQ(opt::pass_from_name(opt::pass_name(id)), id);
  }
  EXPECT_THROW(opt::pass_from_name("bogus"), support::CheckError);
  EXPECT_EQ(opt::sequence_space().size(), opt::kSequenceSpacePasses);
}

}  // namespace
