// Parallel candidate evaluation: fixed-seed searches must produce traces
// bit-identical to the sequential implementation at any worker count (the
// RNG is consumed only on the calling thread; results commit in
// submission order), and the evaluator's single-flight memo cache must
// run exactly one simulation per unique fingerprint even under a
// concurrent burst of identical candidates.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "ir/fingerprint.hpp"
#include "search/strategies.hpp"
#include "workloads/workloads.hpp"

namespace {

using namespace ilc;

search::Evaluator make_eval(const std::string& name = "dotprod") {
  return search::Evaluator(wl::make_workload(name).module, sim::amd_like());
}

void expect_same_trace(const search::SearchTrace& a,
                       const search::SearchTrace& b) {
  EXPECT_EQ(a.evaluations, b.evaluations);
  EXPECT_EQ(a.best_metric, b.best_metric);
  EXPECT_EQ(a.best_seq, b.best_seq);
  EXPECT_EQ(a.best_so_far, b.best_so_far);
}

TEST(ParallelSearch, GeneticTraceBitIdenticalAcrossWorkerCounts) {
  const search::SequenceSpace space;
  search::Evaluator seq_eval = make_eval();
  support::Rng seq_rng(2008);
  const search::SearchTrace reference = search::genetic_search(
      seq_eval, space, seq_rng, 50, search::Objective::Cycles, {});

  for (const unsigned workers : {2u, 4u, 8u}) {
    search::Evaluator eval = make_eval();
    support::Rng rng(2008);  // same seed, fresh stream
    search::GaParams params;
    params.workers = workers;
    const search::SearchTrace trace = search::genetic_search(
        eval, space, rng, 50, search::Objective::Cycles, params);
    SCOPED_TRACE("workers=" + std::to_string(workers));
    expect_same_trace(trace, reference);
  }
}

TEST(ParallelSearch, RandomTraceBitIdenticalAcrossWorkerCounts) {
  const search::SequenceSpace space;
  search::Evaluator seq_eval = make_eval();
  support::Rng seq_rng(7);
  const search::SearchTrace reference =
      search::random_search(seq_eval, space, seq_rng, 30);

  search::Evaluator eval = make_eval();
  support::Rng rng(7);
  const search::SearchTrace trace = search::random_search(
      eval, space, rng, 30, search::Objective::Cycles, /*workers=*/4);
  expect_same_trace(trace, reference);
}

TEST(ParallelSearch, GeneratorSearchDrawsCandidatesSequentially) {
  // A stateful generator must observe the exact sequential call pattern
  // even when evaluation fans out.
  const search::SequenceSpace space;
  auto make_gen = [&space](support::Rng& rng) {
    return [&space, &rng] { return space.sample(rng); };
  };

  search::Evaluator seq_eval = make_eval();
  support::Rng seq_rng(99);
  const search::SearchTrace reference =
      search::generator_search(seq_eval, make_gen(seq_rng), 25);

  search::Evaluator eval = make_eval();
  support::Rng rng(99);
  const search::SearchTrace trace =
      search::generator_search(eval, make_gen(rng), 25,
                               search::Objective::Cycles, /*workers=*/4);
  expect_same_trace(trace, reference);
}

TEST(ParallelSearch, GeneticRespectsBudgetTruncationWhenParallel) {
  // Budget smaller than the population: only `budget` evaluations may
  // land in the trace, in the same order as the sequential run.
  const search::SequenceSpace space;
  search::Evaluator seq_eval = make_eval();
  support::Rng seq_rng(13);
  const search::SearchTrace reference = search::genetic_search(
      seq_eval, space, seq_rng, 7, search::Objective::Cycles, {});
  ASSERT_EQ(reference.evaluations, 7u);

  search::Evaluator eval = make_eval();
  support::Rng rng(13);
  search::GaParams params;
  params.workers = 4;
  const search::SearchTrace trace = search::genetic_search(
      eval, space, rng, 7, search::Objective::Cycles, params);
  expect_same_trace(trace, reference);
}

// --- single-flight memo cache ---------------------------------------------

TEST(EvaluatorStampede, OneSimulationPerUniqueFingerprintUnderBurst) {
  search::Evaluator eval = make_eval();
  const std::vector<opt::PassId> seq;  // every thread asks for -O0

  constexpr unsigned kThreads = 8;
  std::vector<search::EvalResult> results(kThreads);
  {
    std::vector<std::thread> burst;
    burst.reserve(kThreads);
    for (unsigned t = 0; t < kThreads; ++t)
      burst.emplace_back(
          [&, t] { results[t] = eval.eval_sequence(seq); });
    for (auto& th : burst) th.join();
  }

  // One leader simulated; every other thread joined that flight (or hit
  // the completed entry) and is counted as a cache hit.
  EXPECT_EQ(eval.simulations(), 1u);
  EXPECT_EQ(eval.cache_hits(), kThreads - 1);
  for (const auto& r : results) {
    EXPECT_EQ(r.cycles, results[0].cycles);
    EXPECT_EQ(r.instructions, results[0].instructions);
  }
}

TEST(EvaluatorStampede, DistinctFingerprintsSimulateIndependently) {
  search::Evaluator eval = make_eval();
  const search::SequenceSpace space;
  support::Rng rng(5);
  // Two sequences that optimize to different code, evaluated twice each:
  // two simulations, two hits.
  std::vector<opt::PassId> a, b;
  do {
    a = space.sample(rng);
    b = space.sample(rng);
  } while (ir::fingerprint(eval.optimized(a)) ==
           ir::fingerprint(eval.optimized(b)));
  eval.eval_sequence(a);
  eval.eval_sequence(b);
  eval.eval_sequence(a);
  eval.eval_sequence(b);
  EXPECT_EQ(eval.simulations(), 2u);
  EXPECT_EQ(eval.cache_hits(), 2u);
}

TEST(EvaluatorStampede, CacheDisabledSimulatesEveryCall) {
  search::Evaluator eval = make_eval();
  eval.set_cache_enabled(false);
  const std::vector<opt::PassId> seq;
  eval.eval_sequence(seq);
  eval.eval_sequence(seq);
  EXPECT_EQ(eval.simulations(), 2u);
  EXPECT_EQ(eval.cache_hits(), 0u);
}

}  // namespace
