// Parallel candidate evaluation: fixed-seed searches must produce traces
// bit-identical to the sequential implementation at any worker count (the
// RNG is consumed only on the calling thread; results commit in
// submission order), and the evaluator's single-flight memo cache must
// run exactly one simulation per unique fingerprint even under a
// concurrent burst of identical candidates.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "ir/fingerprint.hpp"
#include "search/seedbank.hpp"
#include "search/strategies.hpp"
#include "workloads/workloads.hpp"

namespace {

using namespace ilc;

search::Evaluator make_eval(const std::string& name = "dotprod") {
  return search::Evaluator(wl::make_workload(name).module, sim::amd_like());
}

void expect_same_trace(const search::SearchTrace& a,
                       const search::SearchTrace& b) {
  EXPECT_EQ(a.evaluations, b.evaluations);
  EXPECT_EQ(a.best_metric, b.best_metric);
  EXPECT_EQ(a.best_seq, b.best_seq);
  EXPECT_EQ(a.best_so_far, b.best_so_far);
}

TEST(ParallelSearch, GeneticTraceBitIdenticalAcrossWorkerCounts) {
  const search::SequenceSpace space;
  search::Evaluator seq_eval = make_eval();
  support::Rng seq_rng(2008);
  const search::SearchTrace reference = search::genetic_search(
      seq_eval, space, seq_rng, 50, search::Objective::Cycles, {});

  for (const unsigned workers : {2u, 4u, 8u}) {
    search::Evaluator eval = make_eval();
    support::Rng rng(2008);  // same seed, fresh stream
    search::GaParams params;
    params.workers = workers;
    const search::SearchTrace trace = search::genetic_search(
        eval, space, rng, 50, search::Objective::Cycles, params);
    SCOPED_TRACE("workers=" + std::to_string(workers));
    expect_same_trace(trace, reference);
  }
}

TEST(ParallelSearch, RandomTraceBitIdenticalAcrossWorkerCounts) {
  const search::SequenceSpace space;
  search::Evaluator seq_eval = make_eval();
  support::Rng seq_rng(7);
  const search::SearchTrace reference =
      search::random_search(seq_eval, space, seq_rng, 30);

  search::Evaluator eval = make_eval();
  support::Rng rng(7);
  const search::SearchTrace trace = search::random_search(
      eval, space, rng, 30, search::Objective::Cycles, /*workers=*/4);
  expect_same_trace(trace, reference);
}

TEST(ParallelSearch, GeneratorSearchDrawsCandidatesSequentially) {
  // A stateful generator must observe the exact sequential call pattern
  // even when evaluation fans out.
  const search::SequenceSpace space;
  auto make_gen = [&space](support::Rng& rng) {
    return [&space, &rng] { return space.sample(rng); };
  };

  search::Evaluator seq_eval = make_eval();
  support::Rng seq_rng(99);
  const search::SearchTrace reference =
      search::generator_search(seq_eval, make_gen(seq_rng), 25);

  search::Evaluator eval = make_eval();
  support::Rng rng(99);
  const search::SearchTrace trace =
      search::generator_search(eval, make_gen(rng), 25,
                               search::Objective::Cycles, /*workers=*/4);
  expect_same_trace(trace, reference);
}

TEST(ParallelSearch, GeneticRespectsBudgetTruncationWhenParallel) {
  // Budget smaller than the population: only `budget` evaluations may
  // land in the trace, in the same order as the sequential run.
  const search::SequenceSpace space;
  search::Evaluator seq_eval = make_eval();
  support::Rng seq_rng(13);
  const search::SearchTrace reference = search::genetic_search(
      seq_eval, space, seq_rng, 7, search::Objective::Cycles, {});
  ASSERT_EQ(reference.evaluations, 7u);

  search::Evaluator eval = make_eval();
  support::Rng rng(13);
  search::GaParams params;
  params.workers = 4;
  const search::SearchTrace trace = search::genetic_search(
      eval, space, rng, 7, search::Objective::Cycles, params);
  expect_same_trace(trace, reference);
}

// --- seeding + Pareto (ROADMAP item 3) ------------------------------------

// A hand-built seeding bundle: a couple of fixed valid sequences plus an
// estimator fit on synthetic relative-cycles data.
search::Seeding toy_seeding(const search::SequenceSpace& space,
                            search::PerfEstimator& est) {
  search::Seeding seeding;
  support::Rng rng(41);
  std::vector<std::vector<opt::PassId>> train;
  std::vector<double> rel;
  for (unsigned i = 0; i < 24; ++i) {
    auto seq = space.sample(rng);
    // Synthetic but deterministic target: shorter encodings of unrolls
    // predict better relative cycles.
    double y = 1.0;
    for (opt::PassId p : seq)
      if (opt::is_unroll(p)) y -= 0.05;
    train.push_back(seq);
    rel.push_back(y);
  }
  est.fit(train, rel);
  seeding.seeds = {train[0], train[1], train[2]};
  seeding.estimator = est.ok() ? &est : nullptr;
  return seeding;
}

TEST(ParallelSearch, SeededGaTraceBitIdenticalAcrossWorkerCounts) {
  const search::SequenceSpace space;
  search::PerfEstimator est;
  const search::Seeding seeding = toy_seeding(space, est);
  ASSERT_TRUE(seeding.estimator != nullptr);

  auto run = [&](unsigned workers) {
    search::Evaluator eval = make_eval();
    support::Rng rng(2008);
    search::GaParams params;
    params.workers = workers;
    params.seeds = seeding.seeds;
    params.estimator = seeding.estimator;
    return search::genetic_search(eval, space, rng, 50,
                                  search::Objective::Cycles, params);
  };
  const search::SearchTrace reference = run(1);
  for (const unsigned workers : {2u, 4u, 8u}) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    expect_same_trace(run(workers), reference);
  }
}

TEST(ParallelSearch, SeededRandomTraceBitIdenticalAcrossWorkerCounts) {
  const search::SequenceSpace space;
  search::PerfEstimator est;
  const search::Seeding seeding = toy_seeding(space, est);

  auto run = [&](unsigned workers) {
    search::Evaluator eval = make_eval();
    support::Rng rng(7);
    return search::seeded_random_search(eval, space, seeding, rng, 30,
                                        search::Objective::Cycles, workers);
  };
  const search::SearchTrace reference = run(1);
  expect_same_trace(run(4), reference);
  // The seeds were evaluated first: the trace starts with their metrics.
  ASSERT_EQ(reference.evaluations, 30u);
}

void expect_same_front(const search::ParetoArchive& a,
                       const search::ParetoArchive& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.front()[i].cycles, b.front()[i].cycles);
    EXPECT_EQ(a.front()[i].code_size, b.front()[i].code_size);
    EXPECT_EQ(a.front()[i].seq, b.front()[i].seq);
  }
}

TEST(ParallelSearch, ParetoGaArchiveDeterministicAcrossWorkerCounts) {
  const search::SequenceSpace space;
  auto run = [&](unsigned workers) {
    search::Evaluator eval = make_eval();
    support::Rng rng(2008);
    search::GaParams params;
    params.workers = workers;
    return search::genetic_search(eval, space, rng, 60,
                                  search::Objective::Pareto, params);
  };
  const search::SearchTrace reference = run(1);
  EXPECT_GE(reference.pareto.size(), 1u);
  // Scalar projection of the Pareto run is cycles.
  EXPECT_EQ(reference.best_metric, reference.pareto.front().front().cycles);
  for (const unsigned workers : {2u, 4u}) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    const search::SearchTrace trace = run(workers);
    expect_same_trace(trace, reference);
    expect_same_front(trace.pareto, reference.pareto);
    EXPECT_DOUBLE_EQ(trace.pareto.hypervolume(1u << 20, 1u << 20),
                     reference.pareto.hypervolume(1u << 20, 1u << 20));
  }
}

// --- single-flight memo cache ---------------------------------------------

TEST(EvaluatorStampede, OneSimulationPerUniqueFingerprintUnderBurst) {
  search::Evaluator eval = make_eval();
  const std::vector<opt::PassId> seq;  // every thread asks for -O0

  constexpr unsigned kThreads = 8;
  std::vector<search::EvalResult> results(kThreads);
  {
    std::vector<std::thread> burst;
    burst.reserve(kThreads);
    for (unsigned t = 0; t < kThreads; ++t)
      burst.emplace_back(
          [&, t] { results[t] = eval.eval_sequence(seq); });
    for (auto& th : burst) th.join();
  }

  // One leader simulated; every other thread joined that flight (or hit
  // the completed entry) and is counted as a cache hit.
  EXPECT_EQ(eval.simulations(), 1u);
  EXPECT_EQ(eval.cache_hits(), kThreads - 1);
  for (const auto& r : results) {
    EXPECT_EQ(r.cycles, results[0].cycles);
    EXPECT_EQ(r.instructions, results[0].instructions);
  }
}

TEST(EvaluatorStampede, DistinctFingerprintsSimulateIndependently) {
  search::Evaluator eval = make_eval();
  const search::SequenceSpace space;
  support::Rng rng(5);
  // Two sequences that optimize to different code, evaluated twice each:
  // two simulations, two hits.
  std::vector<opt::PassId> a, b;
  do {
    a = space.sample(rng);
    b = space.sample(rng);
  } while (ir::fingerprint(eval.optimized(a)) ==
           ir::fingerprint(eval.optimized(b)));
  eval.eval_sequence(a);
  eval.eval_sequence(b);
  eval.eval_sequence(a);
  eval.eval_sequence(b);
  EXPECT_EQ(eval.simulations(), 2u);
  EXPECT_EQ(eval.cache_hits(), 2u);
}

TEST(EvaluatorStampede, CacheDisabledSimulatesEveryCall) {
  search::Evaluator eval = make_eval();
  eval.set_cache_enabled(false);
  const std::vector<opt::PassId> seq;
  eval.eval_sequence(seq);
  eval.eval_sequence(seq);
  EXPECT_EQ(eval.simulations(), 2u);
  EXPECT_EQ(eval.cache_hits(), 0u);
}

}  // namespace
