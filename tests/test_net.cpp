// ilc::net tests: the TCP front-end's connection lifecycle. Round trips,
// pipelining order, module IR over a socket, the protocol line-length
// limit, half-close, slow-reader and idle eviction, graceful-shutdown
// drain, mid-request client disconnect, injected accept/read/write
// faults, and the leak invariant every scenario ends on: after shutdown,
// accepted == closed and active == 0.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <functional>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "net/server.hpp"
#include "net/session.hpp"
#include "support/failpoint.hpp"
#include "svc/protocol.hpp"
#include "svc/service.hpp"

namespace {

using namespace ilc;
using Clock = std::chrono::steady_clock;

svc::TuningRequest make_request(const std::string& program,
                                unsigned budget = 2) {
  svc::TuningRequest req;
  req.program = program;
  req.budget = budget;
  return req;
}

/// Blocking loopback client with a receive timeout, so a hung server
/// fails the test instead of hanging it.
struct Client {
  int fd = -1;
  std::string buf;

  explicit Client(std::uint16_t port) {
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    const timeval tv{30, 0};
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr),
              0)
        << std::strerror(errno);
  }

  ~Client() { close(); }

  void close() {
    if (fd >= 0) ::close(fd);
    fd = -1;
  }

  void send_str(const std::string& s) {
    ASSERT_EQ(::send(fd, s.data(), s.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(s.size()));
  }

  void half_close() { ::shutdown(fd, SHUT_WR); }

  /// Next response line (terminator stripped); nullopt on EOF, reset, or
  /// timeout.
  std::optional<std::string> read_line() {
    for (;;) {
      const std::size_t pos = buf.find('\n');
      if (pos != std::string::npos) {
        std::string line = buf.substr(0, pos);
        buf.erase(0, pos + 1);
        return line;
      }
      char chunk[4096];
      const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
      if (n <= 0) return std::nullopt;
      buf.append(chunk, static_cast<std::size_t>(n));
    }
  }

  /// The server closed its end (clean EOF or reset) with no further data.
  bool at_eof() {
    char chunk[4096];
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    return n == 0 || (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK);
  }
};

bool wait_until(const std::function<bool()>& pred,
                std::chrono::milliseconds limit =
                    std::chrono::milliseconds(10000)) {
  const Clock::time_point deadline = Clock::now() + limit;
  while (Clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return pred();
}

/// The invariant every test ends on: nothing leaked, nothing hung.
void expect_no_leaks(net::Server& server) {
  server.shutdown();
  const net::Server::Stats s = server.stats();
  EXPECT_EQ(s.accepted, s.closed);
  EXPECT_EQ(s.active, 0);
}

struct FailpointGuard {
  ~FailpointGuard() { support::Failpoints::instance().unset_all(); }
};

TEST(Net, RoundTripAndQuitClosesConnection) {
  svc::TuningService service({.workers = 2});
  net::Server server(service, {});
  Client c(server.port());
  c.send_str("tune fir budget=2\nmetrics\nquit\n");

  const auto tune = c.read_line();
  ASSERT_TRUE(tune.has_value());
  EXPECT_EQ(tune->rfind("ok program=fir", 0), 0u) << *tune;
  const auto metrics = c.read_line();
  ASSERT_TRUE(metrics.has_value());
  EXPECT_EQ(metrics->rfind("metrics requests=1", 0), 0u) << *metrics;
  // `quit`: the server flushes and closes; nothing further arrives.
  EXPECT_TRUE(c.at_eof());
  expect_no_leaks(server);
}

TEST(Net, PipelinedResponsesComeBackInSubmissionOrder) {
  svc::TuningService service({.workers = 2});
  net::Server server(service, {});
  Client c(server.port());
  // One write carrying many requests; the tunes resolve out of order on
  // the worker pool (different budgets, coalescing) but responses must
  // come back in request order.
  const std::vector<std::string> programs = {"fir",   "crc32", "fir",
                                             "rle",   "crc32", "fir"};
  std::string batch;
  for (const std::string& p : programs) batch += "tune " + p + " budget=2\n";
  batch += "metrics\n";
  c.send_str(batch);

  for (const std::string& p : programs) {
    const auto line = c.read_line();
    ASSERT_TRUE(line.has_value());
    EXPECT_EQ(line->rfind("ok program=" + p + " ", 0), 0u) << *line;
  }
  const auto metrics = c.read_line();
  ASSERT_TRUE(metrics.has_value());
  // The metrics barrier ran after every preceding tune completed.
  EXPECT_NE(metrics->find(" queued=0 "), std::string::npos) << *metrics;
  EXPECT_NE(metrics->find(" in_flight=0 "), std::string::npos) << *metrics;
  expect_no_leaks(server);
}

TEST(Net, ModuleBodyIsNotParsedAsCommands) {
  svc::TuningService service({.workers = 2});
  net::Server server(service, {});
  Client c(server.port());
  // The module body deliberately contains lines that would be commands;
  // if the framing were wrong they would produce extra responses.
  c.send_str(
      "module evil 2\n"
      "tune fir budget=1\n"
      "metrics\n"
      "tune evil budget=2\n"
      "quit\n");
  const auto line = c.read_line();
  ASSERT_TRUE(line.has_value());
  // The body is not valid IR — an err response proves it reached the
  // service as the module's IR text, not the command parser.
  EXPECT_EQ(line->rfind("err", 0), 0u) << *line;
  EXPECT_TRUE(c.at_eof());  // exactly one response, then the quit close
  expect_no_leaks(server);
}

TEST(Net, OversizedLineGetsErrorResponseAndClose) {
  svc::TuningService service({.workers = 2});
  net::Server server(service, {});
  Client c(server.port());
  c.send_str(std::string(svc::kMaxRequestLine + 1, 'x') + "\n");
  const auto line = c.read_line();
  ASSERT_TRUE(line.has_value());
  EXPECT_EQ(line->rfind("err request line too long", 0), 0u) << *line;
  EXPECT_TRUE(c.at_eof());
  expect_no_leaks(server);
}

TEST(Net, OversizedUnterminatedLineIsRejectedWithoutBuffering) {
  svc::TuningService service({.workers = 2});
  net::Server server(service, {});
  Client c(server.port());
  // No terminator at all: the server must bound its read buffer rather
  // than accumulate forever.
  c.send_str(std::string(2 * svc::kMaxRequestLine, 'y'));
  const auto line = c.read_line();
  ASSERT_TRUE(line.has_value());
  EXPECT_EQ(line->rfind("err request line too long", 0), 0u) << *line;
  EXPECT_TRUE(c.at_eof());
  expect_no_leaks(server);
}

TEST(Net, PipelinedRequestsBeforeOversizedLineStillAnswer) {
  svc::TuningService service({.workers = 2});
  net::Server server(service, {});
  Client c(server.port());
  c.send_str("tune fir budget=2\n" +
             std::string(svc::kMaxRequestLine + 1, 'x') + "\n");
  const auto tune = c.read_line();
  ASSERT_TRUE(tune.has_value());
  EXPECT_EQ(tune->rfind("ok program=fir", 0), 0u) << *tune;
  const auto err = c.read_line();
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->rfind("err request line too long", 0), 0u) << *err;
  EXPECT_TRUE(c.at_eof());
  expect_no_leaks(server);
}

TEST(Net, HalfCloseStillDeliversPendingResponses) {
  svc::TuningService service({.workers = 2});
  net::Server server(service, {});
  Client c(server.port());
  c.send_str("tune fir budget=2\n");
  c.half_close();  // client finished sending; it still wants the answer
  const auto line = c.read_line();
  ASSERT_TRUE(line.has_value());
  EXPECT_EQ(line->rfind("ok program=fir", 0), 0u) << *line;
  EXPECT_TRUE(c.at_eof());
  expect_no_leaks(server);
}

TEST(Net, SlowReaderIsEvicted) {
  svc::TuningService service({.workers = 2});
  net::ServerOptions opts;
  opts.max_wbuf = 2048;
  opts.write_stall_ms = 100;
  opts.sndbuf = 1;  // kernel clamps to its minimum — still tiny
  net::Server server(service, opts);
  Client c(server.port());
  // Hundreds of cheap synchronous responses, never read: the socket
  // buffer fills, the flush stalls, and the stall timer evicts.
  std::string batch;
  for (int i = 0; i < 2000; ++i) batch += "metrics\n";
  c.send_str(batch);
  ASSERT_TRUE(wait_until(
      [&] { return server.stats().evicted_slow >= 1; }))
      << "slow reader was not evicted";
  // The receive buffer still holds whatever flushed before the stall;
  // drain it down to the close the eviction produced.
  while (c.read_line().has_value()) {
  }
  EXPECT_TRUE(c.at_eof());
  expect_no_leaks(server);
}

TEST(Net, IdleConnectionIsEvicted) {
  svc::TuningService service({.workers = 2});
  net::ServerOptions opts;
  opts.idle_timeout_ms = 80;
  net::Server server(service, opts);
  Client c(server.port());  // connect, then say nothing
  ASSERT_TRUE(wait_until(
      [&] { return server.stats().evicted_idle >= 1; }))
      << "idle connection was not evicted";
  EXPECT_TRUE(c.at_eof());
  expect_no_leaks(server);
}

TEST(Net, GracefulShutdownDrainsInFlightRequests) {
  FailpointGuard guard;
  svc::TuningService service({.workers = 2});
  net::Server server(service, {});
  Client c(server.port());
  // Hold the request in evaluation long enough for shutdown to begin
  // while it is genuinely in flight.
  support::Failpoints::instance().configure("svc.eval=delay:300*1");
  c.send_str("tune fir budget=2\n");
  ASSERT_TRUE(wait_until(
      [&] { return support::Failpoints::instance().hits("svc.eval") >= 1; }));

  server.shutdown();  // blocks: drain resolves the request and flushes

  const auto line = c.read_line();
  ASSERT_TRUE(line.has_value()) << "drain dropped an in-flight response";
  EXPECT_EQ(line->rfind("ok program=fir", 0), 0u) << *line;
  EXPECT_TRUE(c.at_eof());
  const net::Server::Stats s = server.stats();
  EXPECT_EQ(s.accepted, s.closed);
  EXPECT_EQ(s.active, 0);
}

TEST(Net, ClientDisconnectMidRequestAbandonsCleanly) {
  FailpointGuard guard;
  svc::TuningService service({.workers = 2});
  net::Server server(service, {});
  {
    Client c(server.port());
    support::Failpoints::instance().configure("svc.eval=delay:200*1");
    c.send_str("tune fir budget=2\n");
    ASSERT_TRUE(wait_until([&] {
      return support::Failpoints::instance().hits("svc.eval") >= 1;
    }));
    c.close();  // vanish mid-request
  }
  // The completion finds no session to deliver to; the connection must
  // close on its own — no hung worker, no leaked conn, bounded time.
  ASSERT_TRUE(wait_until([&] { return server.stats().active == 0; }))
      << "abandoned connection never closed";
  expect_no_leaks(server);
  // And the service itself is still healthy.
  EXPECT_TRUE(service.tune(make_request("fir")).ok);
}

TEST(Net, AcceptFailpointDropsConnectionsThenRecovers) {
  FailpointGuard guard;
  svc::TuningService service({.workers = 2});
  net::Server server(service, {});
  support::Failpoints::instance().configure("net.accept=error*2");
  {
    Client dropped1(server.port());
    Client dropped2(server.port());
    // The handshake completed (listen backlog) but the server dropped
    // them at accept: EOF with no response.
    dropped1.send_str("metrics\n");
    dropped2.send_str("metrics\n");
    EXPECT_TRUE(dropped1.at_eof());
    EXPECT_TRUE(dropped2.at_eof());
  }
  Client ok(server.port());
  ok.send_str("metrics\n");
  const auto line = ok.read_line();
  ASSERT_TRUE(line.has_value());
  EXPECT_EQ(line->rfind("metrics ", 0), 0u) << *line;
  EXPECT_EQ(server.stats().accept_faults, 2u);
  expect_no_leaks(server);
}

TEST(Net, ReadFailpointClosesConnection) {
  FailpointGuard guard;
  svc::TuningService service({.workers = 2});
  net::Server server(service, {});
  Client c(server.port());
  support::Failpoints::instance().configure("net.read=error*1");
  c.send_str("metrics\n");
  EXPECT_TRUE(c.at_eof());
  expect_no_leaks(server);
}

TEST(Net, WriteFailpointShortWritesStillDeliverIntactResponses) {
  FailpointGuard guard;
  svc::TuningService service({.workers = 2});
  net::Server server(service, {});
  Client c(server.port());
  // Every armed hit truncates a flush to a single byte, exercising the
  // partial-write bookkeeping; responses must still arrive byte-intact.
  support::Failpoints::instance().configure("net.write=error*200");
  c.send_str("metrics\nmetrics\nquit\n");
  for (int i = 0; i < 2; ++i) {
    const auto line = c.read_line();
    ASSERT_TRUE(line.has_value());
    EXPECT_EQ(line->rfind("metrics requests=0 ", 0), 0u) << *line;
  }
  EXPECT_GE(support::Failpoints::instance().hits("net.write"), 1u);
  EXPECT_TRUE(c.at_eof());
  expect_no_leaks(server);
}

TEST(Net, MaxConnsRefusesBeyondLimit) {
  svc::TuningService service({.workers = 2});
  net::ServerOptions opts;
  opts.max_conns = 1;
  net::Server server(service, opts);
  Client keeper(server.port());
  keeper.send_str("metrics\n");
  ASSERT_TRUE(keeper.read_line().has_value());  // registered and serving
  Client refused(server.port());
  refused.send_str("metrics\n");
  EXPECT_TRUE(refused.at_eof());
  ASSERT_TRUE(wait_until([&] { return server.stats().over_limit >= 1; }));
  expect_no_leaks(server);
}

TEST(Net, ManyConnectionsNoLeaks) {
  svc::TuningService service({.workers = 2});
  net::Server server(service, {});
  service.tune(make_request("fir"));  // warm the cache
  for (int i = 0; i < 32; ++i) {
    Client c(server.port());
    c.send_str("tune fir budget=2\nquit\n");
    const auto line = c.read_line();
    ASSERT_TRUE(line.has_value());
    EXPECT_EQ(line->rfind("ok program=fir", 0), 0u) << *line;
    EXPECT_TRUE(c.at_eof());
  }
  ASSERT_TRUE(wait_until([&] { return server.stats().active == 0; }));
  const net::Server::Stats s = server.stats();
  EXPECT_EQ(s.accepted, 32u);
  EXPECT_EQ(s.responses, 32u);
  expect_no_leaks(server);
}

// The shared Session state machine, driven directly (no sockets): the
// barrier semantics both transports rely on.
TEST(NetSession, BarriersWaitForPrecedingSlots) {
  FailpointGuard guard;
  svc::TuningService service({.workers = 2});
  const std::shared_ptr<net::Session> session =
      net::Session::create(service, {});
  support::Failpoints::instance().configure("svc.eval=delay:100*1");
  session->feed_line("tune fir budget=2");
  session->feed_line("metrics");  // must observe the completed tune
  EXPECT_TRUE(session->barrier_pending());
  std::string out;
  EXPECT_EQ(session->drain_ready(out), 0u);  // nothing ready yet
  session->wait_all();
  EXPECT_FALSE(session->barrier_pending());
  std::vector<net::Session::Done> done;
  EXPECT_EQ(session->drain_ready(out, &done), 2u);
  EXPECT_EQ(out.rfind("ok program=fir", 0), 0u) << out;
  EXPECT_NE(out.find("\nmetrics requests=1 "), std::string::npos) << out;
  EXPECT_NE(out.find(" in_flight=0 "), std::string::npos) << out;
  ASSERT_EQ(done.size(), 2u);
  EXPECT_TRUE(done[0].is_tune);
  EXPECT_FALSE(done[1].is_tune);
}

TEST(NetSession, QuitStopsProcessing) {
  svc::TuningService service({.workers = 2});
  const std::shared_ptr<net::Session> session =
      net::Session::create(service, {});
  session->feed_line("quit");
  EXPECT_TRUE(session->quit_requested());
  EXPECT_TRUE(session->idle());
}

}  // namespace
