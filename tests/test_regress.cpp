// Regression-model tests: ridge recovers known linear coefficients, k-NN
// interpolates smooth surfaces, and the Spearman/rmse metrics behave.
#include <gtest/gtest.h>

#include <cmath>

#include "ml/regress.hpp"
#include "support/assert.hpp"
#include "support/rng.hpp"

namespace {

using namespace ilc::ml;
using ilc::support::Rng;

RegressionData linear_data(std::uint64_t seed, int n, double noise) {
  // y = 3x0 - 2x1 + 5 (+ noise)
  Rng rng(seed);
  RegressionData d;
  for (int i = 0; i < n; ++i) {
    const double x0 = rng.next_double() * 10 - 5;
    const double x1 = rng.next_double() * 10 - 5;
    const double eps = noise * (rng.next_double() - 0.5);
    d.add({x0, x1}, 3 * x0 - 2 * x1 + 5 + eps);
  }
  return d;
}

TEST(Ridge, RecoversExactLinearModel) {
  RidgeRegression model(1e-9);
  model.fit(linear_data(1, 200, 0.0));
  ASSERT_EQ(model.weights().size(), 3u);
  EXPECT_NEAR(model.weights()[0], 3.0, 1e-6);
  EXPECT_NEAR(model.weights()[1], -2.0, 1e-6);
  EXPECT_NEAR(model.weights()[2], 5.0, 1e-6);
  EXPECT_NEAR(model.predict({1.0, 1.0}), 6.0, 1e-6);
}

TEST(Ridge, RobustToNoise) {
  RidgeRegression model;
  model.fit(linear_data(2, 500, 1.0));
  EXPECT_NEAR(model.predict({2.0, -1.0}), 3 * 2 + 2 + 5, 0.3);
}

TEST(Ridge, RegularizationShrinksWeights) {
  const RegressionData d = linear_data(3, 50, 0.5);
  RidgeRegression weak(1e-6), strong(1e3);
  weak.fit(d);
  strong.fit(d);
  EXPECT_LT(std::fabs(strong.weights()[0]), std::fabs(weak.weights()[0]));
}

TEST(KnnReg, InterpolatesSmoothSurface) {
  // y = x^2 on a grid; prediction between grid points should be close.
  RegressionData d;
  for (int i = -10; i <= 10; ++i) {
    const double x = i;
    d.add({x}, x * x);
  }
  KnnRegressor model(2);
  model.fit(d);
  EXPECT_NEAR(model.predict({3.5}), 12.5, 1.0);  // between 9 and 16
  EXPECT_NEAR(model.predict({5.0}), 25.0, 1e-6);  // on a point
}

TEST(KnnReg, ExactMatchDominates) {
  RegressionData d;
  d.add({0.0}, 1.0);
  d.add({10.0}, 2.0);
  d.add({20.0}, 3.0);
  KnnRegressor model(3);
  model.fit(d);
  EXPECT_NEAR(model.predict({10.0}), 2.0, 1e-6);
}

TEST(Metrics, RmseZeroOnPerfectModel) {
  RidgeRegression model(1e-9);
  const RegressionData d = linear_data(4, 100, 0.0);
  model.fit(d);
  EXPECT_NEAR(rmse(model, d), 0.0, 1e-6);
}

TEST(Metrics, SpearmanPerfectAndInverted) {
  const std::vector<double> a = {1, 2, 3, 4, 5};
  const std::vector<double> up = {10, 20, 30, 40, 50};
  const std::vector<double> down = {5, 4, 3, 2, 1};
  EXPECT_NEAR(spearman(a, up), 1.0, 1e-12);
  EXPECT_NEAR(spearman(a, down), -1.0, 1e-12);
}

TEST(Metrics, SpearmanIsRankBasedNotLinear) {
  // Monotone nonlinear relationship: rank correlation is still 1.
  std::vector<double> x, y;
  for (int i = 1; i <= 20; ++i) {
    x.push_back(i);
    y.push_back(std::exp(0.3 * i));
  }
  EXPECT_NEAR(spearman(x, y), 1.0, 1e-12);
}

TEST(Metrics, SpearmanHandlesTies) {
  const std::vector<double> a = {1, 2, 2, 3};
  const std::vector<double> b = {1, 2, 2, 3};
  EXPECT_NEAR(spearman(a, b), 1.0, 1e-12);
  const std::vector<double> c = {7, 7, 7, 7};  // constant: undefined -> 0
  EXPECT_EQ(spearman(a, c), 0.0);
}

TEST(RegressionDataOps, WithoutRemovesRow) {
  RegressionData d = linear_data(5, 10, 0.0);
  const RegressionData d2 = d.without(0);
  EXPECT_EQ(d2.size(), 9u);
}

}  // namespace
