// Tuning-service tests: single-flight coalescing, persistent warm cache
// across service instances, metrics consistency under a concurrent burst,
// scheduling order, the result cache, the line protocol, and the request
// lifecycle guarantee — every submitted future resolves exactly once, in
// bounded time, under injected persist faults, overload, and deadlines.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <future>
#include <thread>
#include <vector>

#include "features/features.hpp"
#include "ir/fingerprint.hpp"
#include "ir/printer.hpp"
#include "kb/knowledge_base.hpp"
#include "obs/trace.hpp"
#include "search/space.hpp"
#include "support/assert.hpp"
#include "support/failpoint.hpp"
#include "support/rng.hpp"
#include "svc/cache.hpp"
#include "svc/protocol.hpp"
#include "svc/service.hpp"
#include "workloads/workloads.hpp"

namespace {

namespace fs = std::filesystem;

using namespace ilc;

svc::TuningRequest request(const std::string& program, unsigned budget = 8) {
  svc::TuningRequest req;
  req.program = program;
  req.budget = budget;
  return req;
}

TEST(Svc, AnswersWithValidConfigAndMetrics) {
  svc::TuningService service({.workers = 2});
  const svc::TuningResponse r = service.tune(request("fir", 6));
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.source, svc::Source::Search);
  EXPECT_GT(r.baseline_metric, 0u);
  EXPECT_LE(r.best_metric, r.baseline_metric);
  EXPECT_GE(r.speedup, 1.0);
  EXPECT_GT(r.simulations, 0u);

  const svc::Metrics m = service.metrics();
  EXPECT_EQ(m.requests, 1u);
  EXPECT_EQ(m.searches, 1u);
  EXPECT_EQ(m.simulations, r.simulations);
  EXPECT_EQ(m.queued, 0u);
  EXPECT_EQ(m.in_flight, 0u);
}

// Responses are deterministic in the request alone: fanning evaluation
// out over search workers must not change what a search finds.
TEST(Svc, SearchWorkersDoNotChangeResults) {
  auto genetic_request = [] {
    svc::TuningRequest req = request("rle", 30);
    req.strategy = svc::Strategy::Genetic;
    return req;
  };
  svc::TuningService sequential({.workers = 1, .search_workers = 1});
  svc::TuningService parallel({.workers = 1, .search_workers = 4});
  const svc::TuningResponse a = sequential.tune(genetic_request());
  const svc::TuningResponse b = parallel.tune(genetic_request());
  ASSERT_TRUE(a.ok) << a.error;
  ASSERT_TRUE(b.ok) << b.error;
  EXPECT_EQ(a.config, b.config);
  EXPECT_EQ(a.best_metric, b.best_metric);
  EXPECT_EQ(a.baseline_metric, b.baseline_metric);
}

// A Pareto request reports the archive — a non-empty front and its
// hypervolume against the -O0 reference — while the scalar projection
// (cycles) keeps driving best_metric/speedup. Scalar requests carry no
// archive.
TEST(Svc, ParetoObjectiveReportsFrontAndHypervolume) {
  svc::TuningService service({.workers = 1});
  svc::TuningRequest req = request("fir", 30);
  req.objective = search::Objective::Pareto;
  req.strategy = svc::Strategy::Genetic;
  const svc::TuningResponse r = service.tune(req);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_GE(r.pareto_front, 1u);
  EXPECT_GT(r.hypervolume, 0.0);
  EXPECT_LE(r.best_metric, r.baseline_metric);

  const svc::TuningResponse scalar = service.tune(request("fir", 6));
  ASSERT_TRUE(scalar.ok) << scalar.error;
  EXPECT_EQ(scalar.pareto_front, 0u);
  EXPECT_EQ(scalar.hypervolume, 0.0);
}

// A service constructed over a seed KB clusters its programs once at
// startup and warm-starts searches that opt in with seeding=on.
TEST(Svc, SeedKbWarmStartsWhenRequested) {
  const char* path = "svc_test_seeds.kb";
  {
    kb::KnowledgeBase kb;
    search::SequenceSpace space;
    support::Rng rng(17);
    for (const char* name : {"dotprod", "matmul"}) {
      const auto features =
          feat::extract_static(wl::make_workload(name).module);
      for (unsigned i = 0; i < 8; ++i) {
        kb::ExperimentRecord rec;
        rec.program = name;
        rec.machine = "amd-like";
        rec.kind = "sequence";
        rec.config = search::sequence_to_string(space.sample(rng));
        rec.cycles = 100 + 10 * i;
        rec.code_size = 40 + i;
        rec.static_features = features;
        kb.add(std::move(rec));
      }
    }
    ASSERT_TRUE(kb.save(path));
  }

  svc::TuningService service({.workers = 1, .seed_kb_path = path});
  EXPECT_EQ(service.seed_bank_programs(), 2u);
  svc::TuningRequest req = request("fir", 12);
  req.strategy = svc::Strategy::Genetic;
  req.seeding = true;
  const svc::TuningResponse r = service.tune(req);
  EXPECT_TRUE(r.ok) << r.error;
  EXPECT_LE(r.best_metric, r.baseline_metric);
  std::remove(path);
}

// (a) N identical concurrent requests trigger exactly one search; every
// other submission is either coalesced onto it or a warm hit after it.
TEST(Svc, IdenticalConcurrentRequestsRunOneSearch) {
  svc::TuningService service({.workers = 4});
  constexpr unsigned kClients = 16;

  std::vector<std::shared_future<svc::TuningResponse>> futures;
  futures.reserve(kClients);
  for (unsigned i = 0; i < kClients; ++i)
    futures.push_back(service.submit(request("adpcm", 30)));
  for (auto& f : futures) {
    const svc::TuningResponse r = f.get();
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.best_metric, futures.front().get().best_metric);
  }

  const svc::Metrics m = service.metrics();
  EXPECT_EQ(m.requests, kClients);
  EXPECT_EQ(m.searches, 1u);
  EXPECT_EQ(m.coalesced + m.warm_hits, kClients - 1);
  EXPECT_LE(m.simulations, 31u);  // one search's budget + baseline
}

// (b) A second service instance over the same KB store answers a
// previously-tuned request from the warm cache with zero simulations.
TEST(Svc, WarmCachePersistsAcrossServiceInstances) {
  const char* path = "svc_test_persist.kb";
  fs::remove_all(path);

  std::uint64_t tuned_best = 0;
  {
    svc::TuningService service({.workers = 2, .kb_path = path});
    const svc::TuningResponse r = service.tune(request("crc32", 6));
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_GT(r.simulations, 0u);
    tuned_best = r.best_metric;
  }
  {
    svc::TuningService service({.workers = 2, .kb_path = path});
    const svc::TuningResponse r = service.tune(request("crc32", 6));
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.source, svc::Source::WarmCache);
    EXPECT_EQ(r.simulations, 0u);
    EXPECT_EQ(r.best_metric, tuned_best);

    const svc::Metrics m = service.metrics();
    EXPECT_EQ(m.warm_hits, 1u);
    EXPECT_EQ(m.searches, 0u);
    EXPECT_EQ(m.simulations, 0u);
  }
  fs::remove_all(path);
}

// The acceptance scenario for the durable store: the service dies without
// a clean shutdown, mid-append — simulated by grafting a torn frame onto
// the WAL tail — and a warm-restarted service still serves every
// previously-acknowledged result from the recovered store.
TEST(Svc, WarmRestartServesFromRecoveredStoreAfterTornWal) {
  const char* path = "svc_test_crash.kb";
  fs::remove_all(path);

  std::uint64_t fir_best = 0, rle_best = 0;
  {
    svc::TuningService service({.workers = 2, .kb_path = path});
    const svc::TuningResponse a = service.tune(request("fir", 6));
    const svc::TuningResponse b = service.tune(request("rle", 6));
    ASSERT_TRUE(a.ok) << a.error;
    ASSERT_TRUE(b.ok) << b.error;
    fir_best = a.best_metric;
    rle_best = b.best_metric;
  }
  // Simulate the crash: a power cut mid-append leaves a torn frame at the
  // WAL tail (a length prefix promising more bytes than were written).
  {
    const std::string wal = std::string(path) + "/wal.ilc";
    ASSERT_TRUE(fs::is_regular_file(wal));
    std::ofstream f(wal, std::ios::binary | std::ios::app);
    const char torn[] = {0x40, 0x00, 0x00, 0x00, 0x13, 0x37};  // len=64, 2 bytes follow
    f.write(torn, sizeof torn);
  }
  {
    svc::TuningService service({.workers = 2, .kb_path = path});
    const svc::TuningResponse a = service.tune(request("fir", 6));
    const svc::TuningResponse b = service.tune(request("rle", 6));
    ASSERT_TRUE(a.ok) << a.error;
    ASSERT_TRUE(b.ok) << b.error;
    EXPECT_EQ(a.source, svc::Source::WarmCache);
    EXPECT_EQ(b.source, svc::Source::WarmCache);
    EXPECT_EQ(a.best_metric, fir_best);
    EXPECT_EQ(b.best_metric, rle_best);
    EXPECT_EQ(service.metrics().simulations, 0u);
  }
  fs::remove_all(path);
}

// A legacy CSV knowledge base at kb_path is migrated into a store
// directory on first open, and its cached results keep serving warm.
TEST(Svc, LegacyCsvKbFileMigratesToDurableStore) {
  const char* path = "svc_test_migrate.kb";
  fs::remove_all(path);

  const std::uint64_t fp = ir::fingerprint(wl::make_workload("fir").module);
  const std::string key = svc::ResultCache::key(fp, search::Objective::Cycles);
  {
    svc::ResultCache legacy;
    legacy.store(key, "amd-like", {"licm,dce", 123, 456});
    ASSERT_TRUE(legacy.save(path));
    ASSERT_TRUE(fs::is_regular_file(path));
  }
  {
    svc::TuningService service({.workers = 1, .kb_path = path});
    const svc::TuningResponse r = service.tune(request("fir", 6));
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.source, svc::Source::WarmCache);
    EXPECT_EQ(r.best_metric, 123u);
    EXPECT_EQ(r.baseline_metric, 456u);
  }
  EXPECT_TRUE(fs::is_directory(path));  // migrated in place
  fs::remove_all(path);
}

// A kb_path holding neither a store nor a valid CSV KB must refuse to
// start rather than silently run cold.
TEST(Svc, GarbageKbPathThrowsOnStartup) {
  const char* path = "svc_test_garbage_start.kb";
  fs::remove_all(path);
  {
    std::ofstream f(path);
    f << "not a knowledge base\n";
  }
  EXPECT_THROW(svc::TuningService({.workers = 1, .kb_path = path}),
               support::CheckError);
  fs::remove_all(path);
}

// (c) Metrics stay consistent after a concurrent burst from many client
// threads: every request is accounted for exactly once and no gauges leak.
TEST(Svc, MetricsConsistentAfterConcurrentBurst) {
  svc::TuningService service({.workers = 4});
  const std::vector<std::string> programs = {"fir", "crc32", "rle",
                                             "dotprod", "bitcount"};
  constexpr unsigned kThreads = 8;
  constexpr unsigned kPerThread = 5;

  std::vector<std::thread> clients;
  for (unsigned t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      for (unsigned i = 0; i < kPerThread; ++i) {
        svc::TuningRequest req = request(programs[(t + i) % programs.size()], 4);
        req.priority = static_cast<int>(i % 3);
        EXPECT_TRUE(service.submit(req).get().ok);
      }
    });
  }
  for (auto& c : clients) c.join();
  service.drain();

  const svc::Metrics m = service.metrics();
  EXPECT_EQ(m.requests, kThreads * kPerThread);
  // Every request is accounted under exactly one outcome.
  EXPECT_EQ(m.warm_hits + m.coalesced + m.searches + m.errors + m.rejected +
                m.timed_out + m.shed,
            m.requests);
  EXPECT_EQ(m.rejected + m.timed_out + m.shed, 0u);  // never overloaded
  EXPECT_EQ(m.searches, programs.size());  // one real search per program
  EXPECT_EQ(m.queued, 0u);
  EXPECT_EQ(m.in_flight, 0u);
  EXPECT_GT(m.simulations, 0u);
}

TEST(Svc, UnknownProgramYieldsErrorResponseNotThrow) {
  svc::TuningService service({.workers = 1});
  const svc::TuningResponse r = service.tune(request("no-such-workload"));
  EXPECT_FALSE(r.ok);
  EXPECT_FALSE(r.error.empty());
  EXPECT_EQ(r.source, svc::Source::Error);
  EXPECT_EQ(service.metrics().errors, 1u);
}

TEST(Svc, MalformedInlineIrYieldsErrorResponse) {
  svc::TuningService service({.workers = 1});
  svc::TuningRequest req = request("inline");
  req.ir_text = "fn main( {{{ not ir";
  const svc::TuningResponse r = service.tune(req);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(service.metrics().errors, 1u);
}

// Inline IR shares the cache with identically-fingerprinted code: tuning a
// module shipped as text is answered warm for a repeat of the same text.
TEST(Svc, InlineIrRequestsAreCachedByFingerprint) {
  svc::TuningService service({.workers = 2});
  const std::string text = ir::to_string(wl::make_workload("dotprod").module);

  svc::TuningRequest req = request("client-module", 5);
  req.ir_text = text;
  const svc::TuningResponse first = service.tune(req);
  ASSERT_TRUE(first.ok) << first.error;
  EXPECT_EQ(first.source, svc::Source::Search);

  const svc::TuningResponse second = service.tune(req);
  ASSERT_TRUE(second.ok);
  EXPECT_EQ(second.source, svc::Source::WarmCache);
  EXPECT_EQ(second.simulations, 0u);
  EXPECT_EQ(second.best_metric, first.best_metric);
}

// --- the request-lifecycle guarantee under faults and overload -----------
//
// Every submitted future resolves exactly once, in bounded time, on every
// path: persist failure, non-std exceptions, queue-full load shedding,
// deadline expiry, and shutdown. Failpoints make each path deterministic.

class SvcLifecycle : public ::testing::Test {
 protected:
  void TearDown() override { support::Failpoints::instance().unset_all(); }

  static void arm(const std::string& spec) {
    ASSERT_TRUE(support::Failpoints::instance().configure(spec));
  }
  static std::uint64_t hits(const char* name) {
    return support::Failpoints::instance().hits(name);
  }
  /// Spin until `name` has been evaluated more than `min` times — i.e. a
  /// worker has arrived at (and, for `block`, parked inside) the site.
  static void wait_for_hits(const char* name, std::uint64_t min) {
    while (support::Failpoints::instance().hits(name) <= min)
      std::this_thread::yield();
  }
};

// The original bug class: a throwing KB publish after a successful search
// left the in-flight entry stuck and the promise unset — the client hung
// forever and every later duplicate coalesced onto the dead flight. Now
// the future resolves with ok=false, and a later identical submit runs a
// fresh search instead of joining a corpse.
TEST_F(SvcLifecycle, PersistFaultResolvesClientAndDoesNotPoisonFlights) {
  const char* path = "svc_test_persist_fault.kb";
  fs::remove_all(path);
  {
    svc::TuningService service({.workers = 2, .kb_path = path});

    arm("svc.persist=error");
    const svc::TuningResponse r = service.tune(request("fir", 5));
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.error.find("persist failed"), std::string::npos) << r.error;
    EXPECT_EQ(r.source, svc::Source::Error);

    svc::Metrics m = service.metrics();
    EXPECT_EQ(m.persist_errors, 1u);
    EXPECT_EQ(m.errors, 1u);
    EXPECT_EQ(m.in_flight, 0u);

    // The flight was retired: with the fault cleared, the same request is
    // a fresh search (not coalesced, not a hang, not a warm hit — the
    // failed persist never reached the KB).
    support::Failpoints::instance().unset_all();
    const svc::TuningResponse again = service.tune(request("fir", 5));
    ASSERT_TRUE(again.ok) << again.error;
    EXPECT_EQ(again.source, svc::Source::Search);

    m = service.metrics();
    EXPECT_EQ(m.searches, 1u);  // only the second one succeeded
    EXPECT_EQ(m.coalesced, 0u);
  }
  fs::remove_all(path);
}

// A non-std exception thrown mid-search must not escape into the pool
// worker (process terminate, every outstanding promise unresolved): the
// catch (...) path resolves the future like any other failure.
TEST_F(SvcLifecycle, NonStdExceptionResolvesInsteadOfTerminating) {
  svc::TuningService service({.workers = 1});
  arm("svc.eval_nonstd=error*1");
  const svc::TuningResponse r = service.tune(request("fir", 5));
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("non-standard"), std::string::npos) << r.error;

  // The worker survived: it can still serve the next request.
  const svc::TuningResponse ok = service.tune(request("fir", 5));
  EXPECT_TRUE(ok.ok) << ok.error;
}

// Queue-full rejection is deterministic: with the single worker parked
// inside a search and the one queue slot taken, the next distinct submit
// resolves Rejected immediately.
TEST_F(SvcLifecycle, QueueFullRejectionIsDeterministic) {
  svc::TuningService service({.workers = 1, .max_queue = 1});
  const std::uint64_t base = hits("svc.eval");
  arm("svc.eval=block");

  auto a = service.submit(request("fir", 5));
  wait_for_hits("svc.eval", base);  // worker is parked inside a's search
  auto b = service.submit(request("crc32", 5));  // takes the queue slot

  const svc::TuningResponse r = service.submit(request("rle", 5)).get();
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.source, svc::Source::Rejected);
  EXPECT_NE(r.error.find("queue full"), std::string::npos) << r.error;
  EXPECT_EQ(service.metrics().rejected, 1u);

  support::Failpoints::instance().unset_all();  // release the worker
  EXPECT_TRUE(a.get().ok) << a.get().error;
  EXPECT_TRUE(b.get().ok) << b.get().error;
}

// Overload degrades gracefully: when the queue is full but the service
// has *ever* computed a result for this flight — even one whose KB
// persist failed — it serves that stale copy instead of rejecting.
TEST_F(SvcLifecycle, OverloadServesStaleResultWhenAvailable) {
  svc::TuningService service({.workers = 1, .max_queue = 1});

  // Compute "fir" once with the persist path broken: the result lands in
  // the stale map but never in the KB cache.
  arm("svc.persist=error*1");
  const svc::TuningResponse first = service.tune(request("fir", 5));
  EXPECT_FALSE(first.ok);
  EXPECT_GT(first.best_metric, 0u);

  // Park the worker and fill the queue with distinct work.
  const std::uint64_t base = hits("svc.eval");
  arm("svc.eval=block");
  auto blocked = service.submit(request("crc32", 5));
  wait_for_hits("svc.eval", base);
  auto queued = service.submit(request("rle", 5));

  // Overloaded "fir" submit: served stale, not rejected, not hung.
  const svc::TuningResponse stale = service.submit(request("fir", 5)).get();
  EXPECT_TRUE(stale.ok);
  EXPECT_EQ(stale.source, svc::Source::StaleCache);
  EXPECT_EQ(stale.best_metric, first.best_metric);
  EXPECT_EQ(stale.baseline_metric, first.baseline_metric);
  EXPECT_EQ(service.metrics().shed, 1u);
  EXPECT_EQ(service.metrics().rejected, 0u);

  support::Failpoints::instance().unset_all();
  EXPECT_TRUE(blocked.get().ok);
  EXPECT_TRUE(queued.get().ok);
}

// A job whose deadline passes while it waits in the queue resolves as
// TimedOut without running a search (and without a simulation spent).
TEST_F(SvcLifecycle, ExpiredDeadlineResolvesTimedOutWithoutSearch) {
  svc::TuningService service({.workers = 1});
  const std::uint64_t base = hits("svc.eval");
  arm("svc.eval=block");

  auto a = service.submit(request("fir", 5));
  wait_for_hits("svc.eval", base);  // worker busy: the next job must wait

  svc::TuningRequest req = request("crc32", 5);
  req.timeout_ms = 1;
  auto b = service.submit(req);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  support::Failpoints::instance().unset_all();  // release the worker
  const svc::TuningResponse r = b.get();
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.source, svc::Source::TimedOut);
  EXPECT_NE(r.error.find("deadline exceeded"), std::string::npos) << r.error;
  EXPECT_EQ(r.simulations, 0u);
  EXPECT_TRUE(a.get().ok);

  const svc::Metrics m = service.metrics();
  EXPECT_EQ(m.timed_out, 1u);
  EXPECT_EQ(m.searches, 1u);  // only "fir" ever ran
  EXPECT_EQ(m.queued, 0u);
  EXPECT_EQ(m.in_flight, 0u);
}

// Destruction drains the queue and resolves every outstanding future even
// while every persist attempt fails — shutdown can never strand a client.
TEST_F(SvcLifecycle, DestructorResolvesAllFuturesUnderPersistFaults) {
  const char* path = "svc_test_drain_fault.kb";
  fs::remove_all(path);
  arm("svc.persist=error");

  std::vector<std::shared_future<svc::TuningResponse>> futures;
  {
    svc::TuningService service({.workers = 2, .kb_path = path});
    for (const char* p : {"fir", "crc32", "rle", "dotprod", "bitcount"})
      futures.push_back(service.submit(request(p, 4)));
  }
  for (auto& f : futures) {
    ASSERT_EQ(f.wait_for(std::chrono::seconds(0)), std::future_status::ready);
    const svc::TuningResponse r = f.get();
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.error.find("persist failed"), std::string::npos) << r.error;
  }
  fs::remove_all(path);
}

// The evaluator cache is bounded (LRU): a service capped at one evaluator
// evicts and re-creates them across requests, and the recreated evaluator
// gives results identical to a service that kept everything cached.
TEST_F(SvcLifecycle, EvaluatorEvictionPreservesResults) {
  auto run_sequence = [](svc::TuningService& s) {
    std::vector<svc::TuningResponse> out;
    out.push_back(s.tune(request("fir", 6)));
    out.push_back(s.tune(request("crc32", 6)));
    svc::TuningRequest size_req = request("fir", 6);
    size_req.objective = search::Objective::CodeSize;  // new cache key,
    out.push_back(s.tune(size_req));                   // same eval key
    return out;
  };

  svc::TuningService unbounded({.workers = 1, .evaluator_cache = 64});
  svc::TuningService tight({.workers = 1, .evaluator_cache = 1});
  const auto full = run_sequence(unbounded);
  const auto evicted = run_sequence(tight);

  EXPECT_EQ(unbounded.evaluator_count(), 2u);  // fir + crc32
  EXPECT_EQ(tight.evaluator_count(), 1u);      // only the latest survives

  ASSERT_EQ(full.size(), evicted.size());
  for (std::size_t i = 0; i < full.size(); ++i) {
    ASSERT_TRUE(full[i].ok) << full[i].error;
    ASSERT_TRUE(evicted[i].ok) << evicted[i].error;
    EXPECT_EQ(full[i].config, evicted[i].config) << i;
    EXPECT_EQ(full[i].best_metric, evicted[i].best_metric) << i;
    EXPECT_EQ(full[i].baseline_metric, evicted[i].baseline_metric) << i;
  }
}

TEST(SvcCache, StoreLookupAndBetterResultWins) {
  svc::ResultCache cache;
  const std::string key = svc::ResultCache::key(0xabcd, search::Objective::Cycles);
  EXPECT_FALSE(cache.lookup(key, "amd-like").has_value());

  cache.store(key, "amd-like", {"licm,dce", 100, 250});
  auto hit = cache.lookup(key, "amd-like");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->config, "licm,dce");
  EXPECT_EQ(hit->best_metric, 100u);
  EXPECT_EQ(hit->baseline_metric, 250u);
  EXPECT_FALSE(cache.lookup(key, "c6713-like").has_value());

  cache.store(key, "amd-like", {"cse", 150, 250});  // worse: ignored
  EXPECT_EQ(cache.lookup(key, "amd-like")->config, "licm,dce");
  cache.store(key, "amd-like", {"cse,licm", 80, 250});  // better: replaces
  EXPECT_EQ(cache.lookup(key, "amd-like")->best_metric, 80u);
  // Upsert semantics: still one best + one baseline record per key.
  EXPECT_EQ(cache.size(), 2u);
}

TEST(SvcCache, RoundTripsThroughKnowledgeBaseFormat) {
  const char* path = "svc_test_cache.kb";
  std::remove(path);
  {
    svc::ResultCache cache;
    cache.store(svc::ResultCache::key(1, search::Objective::Cycles),
                "amd-like", {"licm", 10, 20});
    ASSERT_TRUE(cache.save(path));
  }
  auto reloaded = svc::ResultCache::open(path);
  ASSERT_TRUE(reloaded.has_value());
  auto hit = reloaded->lookup(
      svc::ResultCache::key(1, search::Objective::Cycles), "amd-like");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->config, "licm");
  EXPECT_EQ(hit->baseline_metric, 20u);
  std::remove(path);
}

TEST(SvcCache, OpenMissingFileIsEmptyAndGarbageIsNullopt) {
  auto fresh = svc::ResultCache::open("definitely-missing.kb");
  ASSERT_TRUE(fresh.has_value());
  EXPECT_EQ(fresh->size(), 0u);

  const char* path = "svc_test_garbage.kb";
  {
    FILE* f = fopen(path, "w");
    fputs("not a knowledge base\n", f);
    fclose(f);
  }
  EXPECT_FALSE(svc::ResultCache::open(path).has_value());
  std::remove(path);
}

TEST(SvcProtocol, ParsesTuneWithOptions) {
  const svc::Command c = svc::parse_command(
      "tune fir machine=c6713 budget=25 objective=size strategy=genetic "
      "priority=3 seed=99");
  ASSERT_EQ(c.kind, svc::Command::Kind::Tune);
  EXPECT_EQ(c.request.program, "fir");
  EXPECT_EQ(c.request.machine.name, "c6713-like");
  EXPECT_EQ(c.request.budget, 25u);
  EXPECT_EQ(c.request.objective, search::Objective::CodeSize);
  EXPECT_EQ(c.request.strategy, svc::Strategy::Genetic);
  EXPECT_EQ(c.request.priority, 3);
  EXPECT_EQ(c.request.seed, 99u);
}

TEST(SvcProtocol, ParsesTimeoutMs) {
  const svc::Command c = svc::parse_command("tune fir timeout_ms=250");
  ASSERT_EQ(c.kind, svc::Command::Kind::Tune);
  EXPECT_EQ(c.request.timeout_ms, 250u);
  EXPECT_EQ(svc::parse_command("tune fir timeout_ms=soon").kind,
            svc::Command::Kind::Invalid);
}

TEST(SvcProtocol, ParsesParetoObjectiveAndSeeding) {
  const svc::Command c =
      svc::parse_command("tune fir objective=pareto seeding=on");
  ASSERT_EQ(c.kind, svc::Command::Kind::Tune);
  EXPECT_EQ(c.request.objective, search::Objective::Pareto);
  EXPECT_TRUE(c.request.seeding);

  const svc::Command off = svc::parse_command("tune fir seeding=off");
  ASSERT_EQ(off.kind, svc::Command::Kind::Tune);
  EXPECT_FALSE(off.request.seeding);

  EXPECT_EQ(svc::parse_command("tune fir seeding=maybe").kind,
            svc::Command::Kind::Invalid);
  EXPECT_EQ(svc::parse_command("tune fir objective=area").kind,
            svc::Command::Kind::Invalid);
}

TEST(SvcProtocol, FormatsParetoFrontOnlyWhenPresent) {
  svc::TuningResponse r;
  r.ok = true;
  r.program = "p";
  r.config = "dce";
  const std::string scalar = svc::format_response(r);
  EXPECT_EQ(scalar.find("front="), std::string::npos) << scalar;

  r.pareto_front = 3;
  r.hypervolume = 1234.5;
  const std::string pareto = svc::format_response(r);
  EXPECT_NE(pareto.find(" front=3"), std::string::npos) << pareto;
  EXPECT_NE(pareto.find(" hv=1234.5"), std::string::npos) << pareto;
}

TEST(SvcCache, ObjectivesKeySeparately) {
  const std::string cycles = svc::ResultCache::key(7, search::Objective::Cycles);
  const std::string size = svc::ResultCache::key(7, search::Objective::CodeSize);
  const std::string pareto = svc::ResultCache::key(7, search::Objective::Pareto);
  EXPECT_NE(cycles, size);
  EXPECT_NE(cycles, pareto);
  EXPECT_NE(size, pareto);
}

TEST(SvcProtocol, EscapesConfigQuotesAndBackslashes) {
  svc::TuningResponse r;
  r.ok = true;
  r.program = "p";
  r.config = "a\"b\\c";
  const std::string line = svc::format_response(r);
  EXPECT_NE(line.find("config=\"a\\\"b\\\\c\""), std::string::npos) << line;

  r.config = "tab\there";
  EXPECT_NE(svc::format_response(r).find("config=\"tab here\""),
            std::string::npos);  // control chars become spaces
}

TEST(SvcProtocol, ErrorTextStaysOnOneLine) {
  svc::TuningResponse r;
  r.ok = false;
  r.error = "line one\nline two";
  EXPECT_EQ(svc::format_response(r), "err line one line two");
}

TEST(SvcProtocol, RejectsControlCharsInOptionValues) {
  EXPECT_EQ(svc::parse_command("tune fir seed=1\x01").kind,
            svc::Command::Kind::Invalid);
  EXPECT_EQ(svc::parse_command(std::string("tune fir machine=amd\x7f")).kind,
            svc::Command::Kind::Invalid);
}

TEST(SvcProtocol, RejectsMalformedLines) {
  EXPECT_EQ(svc::parse_command("tune").kind, svc::Command::Kind::Invalid);
  EXPECT_EQ(svc::parse_command("tune fir budget=x").kind,
            svc::Command::Kind::Invalid);
  EXPECT_EQ(svc::parse_command("tune fir machine=sparc").kind,
            svc::Command::Kind::Invalid);
  EXPECT_EQ(svc::parse_command("frobnicate").kind,
            svc::Command::Kind::Invalid);
  EXPECT_EQ(svc::parse_command("module only-name").kind,
            svc::Command::Kind::Invalid);
}

TEST(SvcProtocol, RejectsOverlongRequestLines) {
  // A line at the limit parses (content errors aside); one past it is
  // rejected outright, before any tokenization.
  const std::string pad(svc::kMaxRequestLine - 18, 'p');
  EXPECT_EQ(svc::parse_command("tune fir comment=x" + pad).kind,
            svc::Command::Kind::Invalid);  // unknown option, but parsed
  const svc::Command over =
      svc::parse_command(std::string(svc::kMaxRequestLine + 1, 'x'));
  EXPECT_EQ(over.kind, svc::Command::Kind::Invalid);
  EXPECT_NE(over.error.find("too long"), std::string::npos) << over.error;
  // The guard is total: even a would-be-valid command is refused.
  const svc::Command big_tune = svc::parse_command(
      "tune fir budget=2 # " + std::string(svc::kMaxRequestLine, 'z'));
  EXPECT_EQ(big_tune.kind, svc::Command::Kind::Invalid);
  EXPECT_NE(big_tune.error.find("too long"), std::string::npos);
}

TEST(SvcProtocol, SkipsBlanksAndCommentsParsesControlLines) {
  EXPECT_EQ(svc::parse_command("").kind, svc::Command::Kind::Empty);
  EXPECT_EQ(svc::parse_command("  # comment").kind, svc::Command::Kind::Empty);
  EXPECT_EQ(svc::parse_command("metrics").kind, svc::Command::Kind::Metrics);
  EXPECT_EQ(svc::parse_command("quit").kind, svc::Command::Kind::Quit);
  const svc::Command save = svc::parse_command("save out.kb");
  EXPECT_EQ(save.kind, svc::Command::Kind::Save);
  EXPECT_EQ(save.path, "out.kb");
  const svc::Command mod = svc::parse_command("module m 3");
  EXPECT_EQ(mod.kind, svc::Command::Kind::Module);
  EXPECT_EQ(mod.module_name, "m");
  EXPECT_EQ(mod.module_lines, 3u);
}

// A tuning request is traceable end-to-end: scheduling, cache lookup,
// evaluation, and KB persistence all carry the submit span's trace ID,
// across the client/worker thread boundary, and the buffers drain as
// Chrome trace_event JSON.
TEST(SvcTrace, RequestSpansShareOneTraceId) {
  const char* path = "svc_test_trace.kb";
  fs::remove_all(path);
  obs::Tracer::set_enabled(true);
  obs::Tracer::clear();
  {
    svc::TuningService service({.workers = 2, .kb_path = path});
    const svc::TuningResponse r = service.tune(request("fir", 6));
    ASSERT_TRUE(r.ok) << r.error;
  }

  const std::vector<obs::SpanRecord> recs = obs::Tracer::records();
  auto find = [&](const std::string& name) -> const obs::SpanRecord* {
    for (const auto& rec : recs)
      if (rec.name == name) return &rec;
    return nullptr;
  };
  const obs::SpanRecord* submit = find("svc.submit");
  const obs::SpanRecord* lookup = find("svc.cache_lookup");
  const obs::SpanRecord* wait = find("svc.sched.wait");
  const obs::SpanRecord* eval = find("svc.eval");
  const obs::SpanRecord* persist = find("svc.kb_persist");
  ASSERT_NE(submit, nullptr);
  ASSERT_NE(lookup, nullptr);
  ASSERT_NE(wait, nullptr);
  ASSERT_NE(eval, nullptr);
  ASSERT_NE(persist, nullptr);

  EXPECT_NE(submit->trace_id, 0u);
  EXPECT_EQ(submit->parent_id, 0u);  // the request's root span
  for (const obs::SpanRecord* rec : {lookup, wait, eval, persist})
    EXPECT_EQ(rec->trace_id, submit->trace_id) << rec->name;
  EXPECT_EQ(wait->parent_id, submit->span_id);
  // Evaluation and persistence happened on a worker thread, inside the
  // adopted trace, not on the submitting thread.
  EXPECT_NE(eval->tid, submit->tid);
  // The search's own spans join the same trace through the worker scope.
  const obs::SpanRecord* sim = find("search.simulate");
  ASSERT_NE(sim, nullptr);
  EXPECT_EQ(sim->trace_id, submit->trace_id);

  const std::string json = obs::Tracer::drain_chrome_trace();
  EXPECT_EQ(json.find("{\"traceEvents\":["), 0u);
  EXPECT_NE(json.find("\"name\":\"svc.submit\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);

  obs::Tracer::set_enabled(false);
  obs::Tracer::clear();
  fs::remove_all(path);
}

// The `metrics` protocol verb is a stability surface: moving the collector
// onto the obs registry must not change a byte of its output.
TEST(SvcProtocol, FormatMetricsIsByteCompatible) {
  svc::Metrics m;
  m.requests = 12;
  m.warm_hits = 3;
  m.coalesced = 2;
  m.searches = 6;
  m.errors = 1;
  m.rejected = 4;
  m.timed_out = 2;
  m.shed = 3;
  m.persist_errors = 1;
  m.queued = 4;
  m.in_flight = 2;
  m.simulations = 180;
  m.p50_latency_us = 1500;
  m.p95_latency_us = 9000;
  EXPECT_EQ(svc::format_metrics(m),
            "metrics requests=12 warm_hits=3 coalesced=2 searches=6 "
            "errors=1 rejected=4 timed_out=2 shed=3 persist_errors=1 "
            "queued=4 in_flight=2 simulations=180 "
            "p50_latency_us=1500 p95_latency_us=9000");
}

TEST(SvcProtocol, FormatsResponsesAndMetrics) {
  svc::TuningResponse r;
  r.ok = true;
  r.program = "fir";
  r.config = "licm,dce";
  r.baseline_metric = 200;
  r.best_metric = 100;
  r.speedup = 2.0;
  r.source = svc::Source::WarmCache;
  const std::string line = svc::format_response(r);
  EXPECT_NE(line.find("ok program=fir"), std::string::npos);
  EXPECT_NE(line.find("source=warm"), std::string::npos);
  EXPECT_NE(line.find("config=\"licm,dce\""), std::string::npos);

  r.ok = false;
  r.error = "boom";
  EXPECT_EQ(svc::format_response(r), "err boom");

  svc::Metrics m;
  m.requests = 7;
  const std::string mline = svc::format_metrics(m);
  EXPECT_NE(mline.find("metrics requests=7"), std::string::npos);
}

}  // namespace
