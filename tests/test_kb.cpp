// Knowledge-base tests: record bookkeeping, queries, and the standard
// text format round trip.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "kb/knowledge_base.hpp"
#include "support/rng.hpp"

namespace {

using namespace ilc;

kb::ExperimentRecord sample(const std::string& program, std::uint64_t cycles,
                            const std::string& kind = "sequence") {
  kb::ExperimentRecord r;
  r.program = program;
  r.machine = "amd-like";
  r.kind = kind;
  r.config = kind == "sequence" ? "constprop,dce,licm,peephole,schedule"
                                : "1234";
  r.cycles = cycles;
  r.code_size = 100;
  r.instructions = cycles / 2;
  r.counters[sim::L1_TCM] = 7;
  r.static_features = {1.5, -2.25, 0.0};
  r.dynamic_features = {3.0, 0.125};
  return r;
}

TEST(Kb, QueriesFilterByProgramAndKind) {
  kb::KnowledgeBase base;
  base.add(sample("a", 100));
  base.add(sample("a", 90));
  base.add(sample("b", 50));
  base.add(sample("a", 80, "flags"));
  EXPECT_EQ(base.for_program("a").size(), 3u);
  EXPECT_EQ(base.for_program("a", "sequence").size(), 2u);
  EXPECT_EQ(base.for_program("c").size(), 0u);
  EXPECT_EQ(base.programs(), (std::vector<std::string>{"a", "b"}));
}

TEST(Kb, BestForProgramPicksMinimumCycles) {
  kb::KnowledgeBase base;
  base.add(sample("a", 100));
  base.add(sample("a", 90));
  base.add(sample("a", 95));
  const auto* best = base.best_for_program("a");
  ASSERT_NE(best, nullptr);
  EXPECT_EQ(best->cycles, 90u);
  EXPECT_EQ(base.best_for_program("zzz"), nullptr);
}

TEST(Kb, SerializeParseRoundTrip) {
  kb::KnowledgeBase base;
  base.add(sample("prog_one", 1234));
  base.add(sample("prog,two \"quoted\"", 5678, "flags"));
  const std::string text = base.serialize();
  const auto parsed = kb::KnowledgeBase::parse(text);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->size(), 2u);
  const auto& r0 = parsed->records()[0];
  EXPECT_EQ(r0.program, "prog_one");
  EXPECT_EQ(r0.cycles, 1234u);
  EXPECT_EQ(r0.counters[sim::L1_TCM], 7u);
  EXPECT_EQ(r0.static_features, (std::vector<double>{1.5, -2.25, 0.0}));
  EXPECT_EQ(r0.dynamic_features, (std::vector<double>{3.0, 0.125}));
  const auto& r1 = parsed->records()[1];
  EXPECT_EQ(r1.program, "prog,two \"quoted\"");
  EXPECT_EQ(r1.kind, "flags");
}

TEST(Kb, ParseRejectsGarbage) {
  EXPECT_FALSE(kb::KnowledgeBase::parse("not a kb").has_value());
  EXPECT_FALSE(kb::KnowledgeBase::parse("").has_value());
}

TEST(Kb, ParseRejectsBadVersionHeader) {
  kb::KnowledgeBase base;
  base.add(sample("a", 1));
  std::string text = base.serialize();
  // Same structure, wrong version tag.
  text.replace(text.find("ilc-kb v1"), 9, "ilc-kb v9");
  EXPECT_FALSE(kb::KnowledgeBase::parse(text).has_value());
}

// Malformed data rows must yield nullopt, never throw or crash.
TEST(Kb, ParseRejectsMalformedRows) {
  kb::KnowledgeBase base;
  base.add(sample("a", 123));
  const std::string good = base.serialize();

  // Truncated mid-row (chop the last 20 characters).
  EXPECT_FALSE(
      kb::KnowledgeBase::parse(good.substr(0, good.size() - 20)).has_value());

  const std::string header = good.substr(0, good.find('\n', good.find('\n') + 1) + 1);
  // Wrong column count.
  EXPECT_FALSE(kb::KnowledgeBase::parse(header + "a,b,c\n").has_value());
  // Non-numeric cycles / code_size / instructions.
  EXPECT_FALSE(kb::KnowledgeBase::parse(
                   header + "p,m,sequence,dce,NaN-cycles,1,2,,,\n")
                   .has_value());
  EXPECT_FALSE(kb::KnowledgeBase::parse(
                   header + "p,m,sequence,dce,1,12kb,2,,,\n")
                   .has_value());
  EXPECT_FALSE(kb::KnowledgeBase::parse(
                   header + "p,m,sequence,dce,1,2,-3,,,\n")
                   .has_value());
  // Non-numeric counter / feature cells.
  EXPECT_FALSE(kb::KnowledgeBase::parse(
                   header + "p,m,sequence,dce,1,2,3,4;x;6,,\n")
                   .has_value());
  EXPECT_FALSE(kb::KnowledgeBase::parse(
                   header + "p,m,sequence,dce,1,2,3,,1.5;oops,\n")
                   .has_value());
  // The well-formed text still parses (the helpers above really are the
  // only difference).
  EXPECT_TRUE(kb::KnowledgeBase::parse(good).has_value());
}

// Property test: any records survive serialize -> parse bit-exactly.
TEST(Kb, SerializeParseRoundTripProperty) {
  support::Rng rng(20080601);
  for (int trial = 0; trial < 25; ++trial) {
    kb::KnowledgeBase base;
    const unsigned n = 1 + static_cast<unsigned>(rng.next_below(8));
    for (unsigned i = 0; i < n; ++i) {
      kb::ExperimentRecord r;
      r.program = "prog-" + std::to_string(rng.next_below(5));
      r.machine = rng.next_below(2) ? "amd-like" : "c6713-like";
      r.kind = rng.next_below(2) ? "sequence" : "flags";
      r.config = rng.next_below(2) ? "licm,dce,\"quoted, comma\"" : "777";
      r.cycles = rng.next_u64() >> (rng.next_below(40));
      r.code_size = rng.next_below(100000);
      r.instructions = rng.next_below(1u << 30);
      for (unsigned c = 0; c < sim::kNumCounters; ++c)
        r.counters.v[c] = rng.next_below(1u << 20);
      const unsigned nf = static_cast<unsigned>(rng.next_below(6));
      for (unsigned f = 0; f < nf; ++f)
        r.static_features.push_back(rng.next_double() * 100.0 - 50.0);
      const unsigned nd = static_cast<unsigned>(rng.next_below(4));
      for (unsigned f = 0; f < nd; ++f)
        r.dynamic_features.push_back(rng.next_double());
      base.add(std::move(r));
    }

    const auto parsed = kb::KnowledgeBase::parse(base.serialize());
    ASSERT_TRUE(parsed.has_value());
    ASSERT_EQ(parsed->size(), base.size());
    for (std::size_t i = 0; i < base.size(); ++i) {
      const auto& a = base.records()[i];
      const auto& b = parsed->records()[i];
      EXPECT_EQ(a.program, b.program);
      EXPECT_EQ(a.machine, b.machine);
      EXPECT_EQ(a.kind, b.kind);
      EXPECT_EQ(a.config, b.config);
      EXPECT_EQ(a.cycles, b.cycles);
      EXPECT_EQ(a.code_size, b.code_size);
      EXPECT_EQ(a.instructions, b.instructions);
      EXPECT_EQ(a.counters.v, b.counters.v);
      EXPECT_EQ(a.static_features, b.static_features);
      EXPECT_EQ(a.dynamic_features, b.dynamic_features);
    }
  }
}

TEST(Kb, FindAndUpsertKeepOneRecordPerKey) {
  kb::KnowledgeBase base;
  EXPECT_EQ(base.find("a", "amd-like", "sequence"), nullptr);

  kb::ExperimentRecord r = sample("a", 100);
  EXPECT_FALSE(base.upsert(r));  // insert
  ASSERT_NE(base.find("a", "amd-like", "sequence"), nullptr);
  EXPECT_EQ(base.find("a", "amd-like", "sequence")->cycles, 100u);
  EXPECT_EQ(base.find("a", "amd-like", "flags"), nullptr);

  r.cycles = 60;
  EXPECT_TRUE(base.upsert(r));  // replace in place
  EXPECT_EQ(base.size(), 1u);
  EXPECT_EQ(base.find("a", "amd-like", "sequence")->cycles, 60u);

  r.kind = "flags";
  r.cycles = 80;
  EXPECT_FALSE(base.upsert(r));  // distinct kind: new record
  EXPECT_EQ(base.size(), 2u);
}

// Property test: the internal hash index must agree with a reference
// linear scan after any interleaving of add() and upsert().
TEST(Kb, IndexMatchesLinearScanReference) {
  support::Rng rng(20080602);
  kb::KnowledgeBase base;
  std::vector<kb::ExperimentRecord> reference;

  auto ref_find = [&](const kb::ExperimentRecord& key)
      -> const kb::ExperimentRecord* {
    for (const auto& r : reference)
      if (r.program == key.program && r.machine == key.machine &&
          r.kind == key.kind)
        return &r;
    return nullptr;
  };

  for (int step = 0; step < 300; ++step) {
    kb::ExperimentRecord r = sample(
        "p" + std::to_string(rng.next_below(6)), rng.next_below(10000),
        rng.next_below(2) ? "sequence" : "flags");
    r.machine = rng.next_below(2) ? "amd-like" : "c6713-like";
    if (rng.next_below(2)) {
      base.add(r);
      reference.push_back(r);
    } else {
      base.upsert(r);
      if (auto* hit = const_cast<kb::ExperimentRecord*>(ref_find(r)))
        *hit = r;
      else
        reference.push_back(r);
    }
  }

  ASSERT_EQ(base.size(), reference.size());
  for (const auto& probe : reference) {
    const auto* got = base.find(probe.program, probe.machine, probe.kind);
    const auto* want = ref_find(probe);
    ASSERT_NE(got, nullptr);
    EXPECT_EQ(got->cycles, want->cycles);
  }
  for (std::size_t i = 0; i < reference.size(); ++i)
    EXPECT_EQ(base.records()[i].cycles, reference[i].cycles);
}

// save() must be atomic: overwrite via temp + rename, no droppings.
TEST(Kb, SaveIsAtomicAndLeavesNoTempFile) {
  const std::string path = "/tmp/ilc_kb_test_atomic.csv";
  kb::KnowledgeBase first;
  first.add(sample("a", 1));
  ASSERT_TRUE(first.save(path));

  kb::KnowledgeBase second;
  second.add(sample("b", 2));
  second.add(sample("c", 3));
  ASSERT_TRUE(second.save(path));  // replaces the old content atomically

  std::ifstream probe(path + ".tmp");
  EXPECT_FALSE(probe.good());
  const auto loaded = kb::KnowledgeBase::load(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->size(), 2u);
  std::remove(path.c_str());

  // An unwritable destination fails cleanly and leaves no temp file.
  EXPECT_FALSE(second.save("/nonexistent-dir/kb.csv"));
  std::ifstream tmp("/nonexistent-dir/kb.csv.tmp");
  EXPECT_FALSE(tmp.good());
}

TEST(Kb, SaveLoadFile) {
  kb::KnowledgeBase base;
  base.add(sample("a", 42));
  const std::string path = "/tmp/ilc_kb_test.csv";
  ASSERT_TRUE(base.save(path));
  const auto loaded = kb::KnowledgeBase::load(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->size(), 1u);
  EXPECT_EQ(loaded->records()[0].cycles, 42u);
  std::remove(path.c_str());
}

TEST(Kb, LoadMissingFileIsNullopt) {
  EXPECT_FALSE(kb::KnowledgeBase::load("/tmp/definitely_missing_kb.csv")
                   .has_value());
}

}  // namespace
