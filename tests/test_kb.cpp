// Knowledge-base tests: record bookkeeping, queries, and the standard
// text format round trip.
#include <gtest/gtest.h>

#include <cstdio>

#include "kb/knowledge_base.hpp"

namespace {

using namespace ilc;

kb::ExperimentRecord sample(const std::string& program, std::uint64_t cycles,
                            const std::string& kind = "sequence") {
  kb::ExperimentRecord r;
  r.program = program;
  r.machine = "amd-like";
  r.kind = kind;
  r.config = kind == "sequence" ? "constprop,dce,licm,peephole,schedule"
                                : "1234";
  r.cycles = cycles;
  r.code_size = 100;
  r.instructions = cycles / 2;
  r.counters[sim::L1_TCM] = 7;
  r.static_features = {1.5, -2.25, 0.0};
  r.dynamic_features = {3.0, 0.125};
  return r;
}

TEST(Kb, QueriesFilterByProgramAndKind) {
  kb::KnowledgeBase base;
  base.add(sample("a", 100));
  base.add(sample("a", 90));
  base.add(sample("b", 50));
  base.add(sample("a", 80, "flags"));
  EXPECT_EQ(base.for_program("a").size(), 3u);
  EXPECT_EQ(base.for_program("a", "sequence").size(), 2u);
  EXPECT_EQ(base.for_program("c").size(), 0u);
  EXPECT_EQ(base.programs(), (std::vector<std::string>{"a", "b"}));
}

TEST(Kb, BestForProgramPicksMinimumCycles) {
  kb::KnowledgeBase base;
  base.add(sample("a", 100));
  base.add(sample("a", 90));
  base.add(sample("a", 95));
  const auto* best = base.best_for_program("a");
  ASSERT_NE(best, nullptr);
  EXPECT_EQ(best->cycles, 90u);
  EXPECT_EQ(base.best_for_program("zzz"), nullptr);
}

TEST(Kb, SerializeParseRoundTrip) {
  kb::KnowledgeBase base;
  base.add(sample("prog_one", 1234));
  base.add(sample("prog,two \"quoted\"", 5678, "flags"));
  const std::string text = base.serialize();
  const auto parsed = kb::KnowledgeBase::parse(text);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->size(), 2u);
  const auto& r0 = parsed->records()[0];
  EXPECT_EQ(r0.program, "prog_one");
  EXPECT_EQ(r0.cycles, 1234u);
  EXPECT_EQ(r0.counters[sim::L1_TCM], 7u);
  EXPECT_EQ(r0.static_features, (std::vector<double>{1.5, -2.25, 0.0}));
  EXPECT_EQ(r0.dynamic_features, (std::vector<double>{3.0, 0.125}));
  const auto& r1 = parsed->records()[1];
  EXPECT_EQ(r1.program, "prog,two \"quoted\"");
  EXPECT_EQ(r1.kind, "flags");
}

TEST(Kb, ParseRejectsGarbage) {
  EXPECT_FALSE(kb::KnowledgeBase::parse("not a kb").has_value());
  EXPECT_FALSE(kb::KnowledgeBase::parse("").has_value());
}

TEST(Kb, SaveLoadFile) {
  kb::KnowledgeBase base;
  base.add(sample("a", 42));
  const std::string path = "/tmp/ilc_kb_test.csv";
  ASSERT_TRUE(base.save(path));
  const auto loaded = kb::KnowledgeBase::load(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->size(), 1u);
  EXPECT_EQ(loaded->records()[0].cycles, 42u);
  std::remove(path.c_str());
}

TEST(Kb, LoadMissingFileIsNullopt) {
  EXPECT_FALSE(kb::KnowledgeBase::load("/tmp/definitely_missing_kb.csv")
                   .has_value());
}

}  // namespace
