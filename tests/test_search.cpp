// Search-layer tests: evaluator caching, sequence-space combinatorics,
// strategy behaviour (random / greedy / GA / generator), enumeration, and
// the FOCUSSED model's learning behaviour.
#include <gtest/gtest.h>

#include "search/evaluator.hpp"
#include "search/focused.hpp"
#include "search/space.hpp"
#include "search/strategies.hpp"
#include "workloads/workloads.hpp"

namespace {

using namespace ilc;
using namespace ilc::search;
using opt::PassId;

TEST(SpaceMath, CountMatchesConstraint) {
  SequenceSpace space;
  // 13 passes, 3 unrolls, length 5: 10^5 + 5*3*10^4 = 250,000.
  EXPECT_EQ(space.count(), 250000u);
  EXPECT_EQ(space.raw_count(), 371293u);  // 13^5
  SequenceSpace unconstrained = space;
  unconstrained.unroll_at_most_once = false;
  EXPECT_EQ(unconstrained.count(), 371293u);
}

TEST(SpaceMath, ValidRejectsDoubleUnroll) {
  SequenceSpace space;
  std::vector<PassId> two_unrolls = {PassId::Unroll2, PassId::Unroll4,
                                     PassId::Dce, PassId::Dce, PassId::Dce};
  EXPECT_FALSE(space.valid(two_unrolls));
  std::vector<PassId> one_unroll = {PassId::Unroll2, PassId::Cse,
                                    PassId::Dce, PassId::Dce, PassId::Dce};
  EXPECT_TRUE(space.valid(one_unroll));
  std::vector<PassId> wrong_len = {PassId::Dce};
  EXPECT_FALSE(space.valid(wrong_len));
  std::vector<PassId> outside = {PassId::PtrCompress, PassId::Dce,
                                 PassId::Dce, PassId::Dce, PassId::Dce};
  EXPECT_FALSE(space.valid(outside));  // PtrCompress not in the 13
}

TEST(SpaceMath, SamplesAreValidAndVaried) {
  SequenceSpace space;
  support::Rng rng(5);
  std::set<std::string> distinct;
  for (int i = 0; i < 100; ++i) {
    const auto seq = space.sample(rng);
    EXPECT_TRUE(space.valid(seq));
    distinct.insert(sequence_to_string(seq));
  }
  EXPECT_GT(distinct.size(), 90u);
}

TEST(SpaceMath, AtRawEnumeratesOdometer) {
  SequenceSpace space;
  const auto first = space.at_raw(0);
  for (PassId id : first) EXPECT_EQ(id, space.passes[0]);
  const auto second = space.at_raw(1);
  EXPECT_EQ(second[0], space.passes[1]);
  EXPECT_EQ(second[1], space.passes[0]);
}

TEST(SequenceStrings, RoundTrip) {
  const std::vector<PassId> seq = {PassId::ConstProp, PassId::Unroll4,
                                   PassId::Dce};
  EXPECT_EQ(sequence_from_string(sequence_to_string(seq)), seq);
  EXPECT_TRUE(sequence_from_string("").empty());
}

TEST(EvaluatorCache, CollapsesEquivalentSequences) {
  wl::Workload w = wl::make_workload("crc32");
  Evaluator eval(w.module, sim::amd_like());
  // dce twice == dce-heavy sequences often converge to identical code.
  const auto r1 = eval.eval_sequence({PassId::Dce});
  const auto r2 = eval.eval_sequence({PassId::Dce, PassId::Dce});
  EXPECT_EQ(r1.cycles, r2.cycles);
  EXPECT_GE(eval.cache_hits(), 1u);
  EXPECT_LE(eval.simulations(), 2u);
}

TEST(EvaluatorCache, DisableForcesResimulation) {
  wl::Workload w = wl::make_workload("crc32");
  Evaluator eval(w.module, sim::amd_like());
  eval.set_cache_enabled(false);
  eval.eval_sequence({PassId::Dce});
  eval.eval_sequence({PassId::Dce});
  EXPECT_EQ(eval.simulations(), 2u);
  EXPECT_EQ(eval.cache_hits(), 0u);
}

TEST(EvaluatorResults, OptimizationNeverBreaksProgram) {
  wl::Workload w = wl::make_workload("fir");
  Evaluator eval(w.module, sim::amd_like());
  support::Rng rng(3);
  SequenceSpace space;
  for (int i = 0; i < 10; ++i) {
    const auto res = eval.eval_sequence(space.sample(rng));
    EXPECT_GT(res.cycles, 0u);
    EXPECT_GT(res.code_size, 0u);
  }
}

TEST(Strategies, TracesAreMonotoneNonIncreasing) {
  wl::Workload w = wl::make_workload("crc32");
  Evaluator eval(w.module, sim::amd_like());
  support::Rng rng(11);
  SequenceSpace space;
  for (auto trace :
       {random_search(eval, space, rng, 20),
        greedy_search(eval, space, rng, 20),
        genetic_search(eval, space, rng, 30)}) {
    ASSERT_GE(trace.best_so_far.size(), 18u);
    for (std::size_t i = 1; i < trace.best_so_far.size(); ++i)
      EXPECT_LE(trace.best_so_far[i], trace.best_so_far[i - 1]);
    EXPECT_EQ(trace.best_metric, trace.best_so_far.back());
    EXPECT_TRUE(space.valid(trace.best_seq));
  }
}

TEST(Strategies, SearchBeatsO0) {
  wl::Workload w = wl::make_workload("fir");
  Evaluator eval(w.module, sim::amd_like());
  const auto o0 = eval.eval_sequence({});
  support::Rng rng(17);
  SequenceSpace space;
  const auto trace = random_search(eval, space, rng, 40);
  EXPECT_LT(trace.best_metric, o0.cycles);
}

TEST(Strategies, GaCodeSizeObjectiveShrinksCode) {
  wl::Workload w = wl::make_workload("adpcm");
  Evaluator eval(w.module, sim::amd_like());
  const auto o0 = eval.eval_sequence({});
  support::Rng rng(23);
  SequenceSpace space;
  const auto trace = genetic_search(eval, space, rng, 60,
                                    Objective::CodeSize);
  EXPECT_LT(trace.best_metric, o0.code_size);
}

TEST(Strategies, EnumerationSamplesDistinctValidPoints) {
  wl::Workload w = wl::make_workload("crc32");
  Evaluator eval(w.module, sim::amd_like());
  support::Rng rng(31);
  SequenceSpace space;
  const auto points = enumerate_space(eval, space, rng, 50);
  EXPECT_EQ(points.size(), 50u);
  for (const auto& pt : points) {
    EXPECT_TRUE(space.valid(pt.seq));
    EXPECT_GT(pt.cycles, 0u);
  }
}

TEST(Strategies, FlagSearchIncludesAnchors) {
  wl::Workload w = wl::make_workload("crc32");
  Evaluator eval(w.module, sim::amd_like());
  support::Rng rng(37);
  const auto points = flag_search(eval, rng, 12);
  EXPECT_EQ(points.size(), 12u);
  EXPECT_EQ(points[0].flags, opt::o0_flags());
  EXPECT_EQ(points[1].flags, opt::fast_flags());
  EXPECT_TRUE(points[2].flags.ptrcompress);
}

// --- FOCUSSED model -------------------------------------------------------

FocusedModel toy_model(FocusedKind kind = FocusedKind::Markov) {
  SequenceSpace space;
  // Two training "programs": one whose good sequences are all licm-ish,
  // one all cse-ish, with well-separated features.
  ProgramSearchData loopy;
  loopy.program = "loopy";
  loopy.features = {10.0, 0.0};
  for (int i = 0; i < 20; ++i)
    loopy.good_seqs.push_back({PassId::Licm, PassId::Unroll4, PassId::Licm,
                               PassId::Schedule, PassId::Dce});
  ProgramSearchData scalar;
  scalar.program = "scalar";
  scalar.features = {0.0, 10.0};
  for (int i = 0; i < 20; ++i)
    scalar.good_seqs.push_back({PassId::Cse, PassId::CopyProp, PassId::Cse,
                                PassId::Peephole, PassId::Dce});
  // mixture=1: the pure 1-NN model selection of Agakov et al.
  return FocusedModel({loopy, scalar}, space, kind, /*mixture=*/1);
}

TEST(Focused, SelectsNearestProgramModel) {
  FocusedModel model = toy_model();
  model.set_target({9.0, 1.0});
  EXPECT_EQ(model.selected_program(), "loopy");
  model.set_target({1.0, 9.0});
  EXPECT_EQ(model.selected_program(), "scalar");
}

TEST(Focused, SamplesConcentrateOnLearnedPasses) {
  FocusedModel model = toy_model();
  model.set_target({9.0, 1.0});
  support::Rng rng(41);
  unsigned licm_hits = 0, total = 0;
  for (int i = 0; i < 100; ++i) {
    const auto seq = model.sample(rng);
    EXPECT_TRUE(model.space().valid(seq));
    for (PassId id : seq) {
      ++total;
      if (id == PassId::Licm || id == PassId::Unroll4 ||
          id == PassId::Schedule || id == PassId::Dce)
        ++licm_hits;
    }
  }
  EXPECT_GT(static_cast<double>(licm_hits) / total, 0.6);
}

TEST(Focused, LogProbRanksLearnedSequencesHigher) {
  FocusedModel model = toy_model();
  model.set_target({9.0, 1.0});
  const double lp_good = model.log_prob(
      {PassId::Licm, PassId::Unroll4, PassId::Licm, PassId::Schedule,
       PassId::Dce});
  const double lp_bad = model.log_prob(
      {PassId::Cse, PassId::CopyProp, PassId::Cse, PassId::Peephole,
       PassId::CopyProp});
  EXPECT_GT(lp_good, lp_bad);
}

TEST(Focused, IidAndMarkovBothSampleValid) {
  for (FocusedKind kind : {FocusedKind::Iid, FocusedKind::Markov}) {
    FocusedModel model = toy_model(kind);
    model.set_target({9.0, 1.0});
    support::Rng rng(43);
    for (int i = 0; i < 20; ++i)
      EXPECT_TRUE(model.space().valid(model.sample(rng)));
  }
}

TEST(Focused, MixtureBlendsNearestComponents) {
  SequenceSpace space;
  ProgramSearchData a, b, far;
  a.program = "a";
  a.features = {0.0, 0.0};
  a.good_seqs.assign(10, {PassId::Licm, PassId::Licm, PassId::Licm,
                          PassId::Licm, PassId::Licm});
  b.program = "b";
  b.features = {1.0, 0.0};
  b.good_seqs.assign(10, {PassId::Cse, PassId::Cse, PassId::Cse,
                          PassId::Cse, PassId::Cse});
  far.program = "far";
  far.features = {100.0, 100.0};
  far.good_seqs.assign(10, {PassId::Dce, PassId::Dce, PassId::Dce,
                            PassId::Dce, PassId::Dce});
  FocusedModel model({a, b, far}, space, FocusedKind::Iid, /*mixture=*/2);
  model.set_target({0.4, 0.0});  // between a and b, far from "far"
  EXPECT_EQ(model.selected_program(), "a");
  // Samples should draw from both near components, none from "far".
  support::Rng rng(53);
  unsigned licm = 0, cse = 0, dce = 0, total = 0;
  for (int i = 0; i < 200; ++i) {
    for (PassId id : model.sample(rng)) {
      ++total;
      licm += id == PassId::Licm;
      cse += id == PassId::Cse;
      dce += id == PassId::Dce;
    }
  }
  EXPECT_GT(licm, total / 5);
  EXPECT_GT(cse, total / 10);
  EXPECT_LT(dce, total / 10);
}

TEST(Focused, GeneratorSearchUsesModelSamples) {
  wl::Workload w = wl::make_workload("fir");
  Evaluator eval(w.module, sim::amd_like());
  FocusedModel model = toy_model();
  model.set_target({9.0, 1.0});
  support::Rng rng(47);
  const auto trace = generator_search(
      eval, [&] { return model.sample(rng); }, 15);
  EXPECT_EQ(trace.evaluations, 15u);
  EXPECT_TRUE(model.space().valid(trace.best_seq));
}

}  // namespace
