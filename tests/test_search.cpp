// Search-layer tests: evaluator caching, sequence-space combinatorics,
// strategy behaviour (random / greedy / GA / generator), enumeration, and
// the FOCUSSED model's learning behaviour.
#include <gtest/gtest.h>

#include "kb/knowledge_base.hpp"
#include "obs/metrics.hpp"
#include "search/evaluator.hpp"
#include "search/focused.hpp"
#include "search/pareto.hpp"
#include "search/seedbank.hpp"
#include "search/space.hpp"
#include "search/strategies.hpp"
#include "workloads/workloads.hpp"

namespace {

using namespace ilc;
using namespace ilc::search;
using opt::PassId;

TEST(SpaceMath, CountMatchesConstraint) {
  SequenceSpace space;
  // 13 passes, 3 unrolls, length 5: 10^5 + 5*3*10^4 = 250,000.
  EXPECT_EQ(space.count(), 250000u);
  EXPECT_EQ(space.raw_count(), 371293u);  // 13^5
  SequenceSpace unconstrained = space;
  unconstrained.unroll_at_most_once = false;
  EXPECT_EQ(unconstrained.count(), 371293u);
}

TEST(SpaceMath, ValidRejectsDoubleUnroll) {
  SequenceSpace space;
  std::vector<PassId> two_unrolls = {PassId::Unroll2, PassId::Unroll4,
                                     PassId::Dce, PassId::Dce, PassId::Dce};
  EXPECT_FALSE(space.valid(two_unrolls));
  std::vector<PassId> one_unroll = {PassId::Unroll2, PassId::Cse,
                                    PassId::Dce, PassId::Dce, PassId::Dce};
  EXPECT_TRUE(space.valid(one_unroll));
  std::vector<PassId> wrong_len = {PassId::Dce};
  EXPECT_FALSE(space.valid(wrong_len));
  std::vector<PassId> outside = {PassId::PtrCompress, PassId::Dce,
                                 PassId::Dce, PassId::Dce, PassId::Dce};
  EXPECT_FALSE(space.valid(outside));  // PtrCompress not in the 13
}

TEST(SpaceMath, SamplesAreValidAndVaried) {
  SequenceSpace space;
  support::Rng rng(5);
  std::set<std::string> distinct;
  for (int i = 0; i < 100; ++i) {
    const auto seq = space.sample(rng);
    EXPECT_TRUE(space.valid(seq));
    distinct.insert(sequence_to_string(seq));
  }
  EXPECT_GT(distinct.size(), 90u);
}

TEST(SpaceMath, AtRawEnumeratesOdometer) {
  SequenceSpace space;
  const auto first = space.at_raw(0);
  for (PassId id : first) EXPECT_EQ(id, space.passes[0]);
  const auto second = space.at_raw(1);
  EXPECT_EQ(second[0], space.passes[1]);
  EXPECT_EQ(second[1], space.passes[0]);
}

TEST(SequenceStrings, RoundTrip) {
  const std::vector<PassId> seq = {PassId::ConstProp, PassId::Unroll4,
                                   PassId::Dce};
  EXPECT_EQ(sequence_from_string(sequence_to_string(seq)), seq);
  EXPECT_TRUE(sequence_from_string("").empty());
}

TEST(EvaluatorCache, CollapsesEquivalentSequences) {
  wl::Workload w = wl::make_workload("crc32");
  Evaluator eval(w.module, sim::amd_like());
  // dce twice == dce-heavy sequences often converge to identical code.
  const auto r1 = eval.eval_sequence({PassId::Dce});
  const auto r2 = eval.eval_sequence({PassId::Dce, PassId::Dce});
  EXPECT_EQ(r1.cycles, r2.cycles);
  EXPECT_GE(eval.cache_hits(), 1u);
  EXPECT_LE(eval.simulations(), 2u);
}

TEST(EvaluatorCache, DisableForcesResimulation) {
  wl::Workload w = wl::make_workload("crc32");
  Evaluator eval(w.module, sim::amd_like());
  eval.set_cache_enabled(false);
  eval.eval_sequence({PassId::Dce});
  eval.eval_sequence({PassId::Dce});
  EXPECT_EQ(eval.simulations(), 2u);
  EXPECT_EQ(eval.cache_hits(), 0u);
}

TEST(EvaluatorResults, OptimizationNeverBreaksProgram) {
  wl::Workload w = wl::make_workload("fir");
  Evaluator eval(w.module, sim::amd_like());
  support::Rng rng(3);
  SequenceSpace space;
  for (int i = 0; i < 10; ++i) {
    const auto res = eval.eval_sequence(space.sample(rng));
    EXPECT_GT(res.cycles, 0u);
    EXPECT_GT(res.code_size, 0u);
  }
}

TEST(Strategies, TracesAreMonotoneNonIncreasing) {
  wl::Workload w = wl::make_workload("crc32");
  Evaluator eval(w.module, sim::amd_like());
  support::Rng rng(11);
  SequenceSpace space;
  for (auto trace :
       {random_search(eval, space, rng, 20),
        greedy_search(eval, space, rng, 20),
        genetic_search(eval, space, rng, 30)}) {
    ASSERT_GE(trace.best_so_far.size(), 18u);
    for (std::size_t i = 1; i < trace.best_so_far.size(); ++i)
      EXPECT_LE(trace.best_so_far[i], trace.best_so_far[i - 1]);
    EXPECT_EQ(trace.best_metric, trace.best_so_far.back());
    EXPECT_TRUE(space.valid(trace.best_seq));
  }
}

TEST(Strategies, SearchBeatsO0) {
  wl::Workload w = wl::make_workload("fir");
  Evaluator eval(w.module, sim::amd_like());
  const auto o0 = eval.eval_sequence({});
  support::Rng rng(17);
  SequenceSpace space;
  const auto trace = random_search(eval, space, rng, 40);
  EXPECT_LT(trace.best_metric, o0.cycles);
}

TEST(Strategies, GaCodeSizeObjectiveShrinksCode) {
  wl::Workload w = wl::make_workload("adpcm");
  Evaluator eval(w.module, sim::amd_like());
  const auto o0 = eval.eval_sequence({});
  support::Rng rng(23);
  SequenceSpace space;
  const auto trace = genetic_search(eval, space, rng, 60,
                                    Objective::CodeSize);
  EXPECT_LT(trace.best_metric, o0.code_size);
}

TEST(Strategies, EnumerationSamplesDistinctValidPoints) {
  wl::Workload w = wl::make_workload("crc32");
  Evaluator eval(w.module, sim::amd_like());
  support::Rng rng(31);
  SequenceSpace space;
  const auto points = enumerate_space(eval, space, rng, 50);
  EXPECT_EQ(points.size(), 50u);
  for (const auto& pt : points) {
    EXPECT_TRUE(space.valid(pt.seq));
    EXPECT_GT(pt.cycles, 0u);
  }
}

TEST(Strategies, FlagSearchIncludesAnchors) {
  wl::Workload w = wl::make_workload("crc32");
  Evaluator eval(w.module, sim::amd_like());
  support::Rng rng(37);
  const auto points = flag_search(eval, rng, 12);
  EXPECT_EQ(points.size(), 12u);
  EXPECT_EQ(points[0].flags, opt::o0_flags());
  EXPECT_EQ(points[1].flags, opt::fast_flags());
  EXPECT_TRUE(points[2].flags.ptrcompress);
}

// --- FOCUSSED model -------------------------------------------------------

FocusedModel toy_model(FocusedKind kind = FocusedKind::Markov) {
  SequenceSpace space;
  // Two training "programs": one whose good sequences are all licm-ish,
  // one all cse-ish, with well-separated features.
  ProgramSearchData loopy;
  loopy.program = "loopy";
  loopy.features = {10.0, 0.0};
  for (int i = 0; i < 20; ++i)
    loopy.good_seqs.push_back({PassId::Licm, PassId::Unroll4, PassId::Licm,
                               PassId::Schedule, PassId::Dce});
  ProgramSearchData scalar;
  scalar.program = "scalar";
  scalar.features = {0.0, 10.0};
  for (int i = 0; i < 20; ++i)
    scalar.good_seqs.push_back({PassId::Cse, PassId::CopyProp, PassId::Cse,
                                PassId::Peephole, PassId::Dce});
  // mixture=1: the pure 1-NN model selection of Agakov et al.
  return FocusedModel({loopy, scalar}, space, kind, /*mixture=*/1);
}

TEST(Focused, SelectsNearestProgramModel) {
  FocusedModel model = toy_model();
  model.set_target({9.0, 1.0});
  EXPECT_EQ(model.selected_program(), "loopy");
  model.set_target({1.0, 9.0});
  EXPECT_EQ(model.selected_program(), "scalar");
}

TEST(Focused, SamplesConcentrateOnLearnedPasses) {
  FocusedModel model = toy_model();
  model.set_target({9.0, 1.0});
  support::Rng rng(41);
  unsigned licm_hits = 0, total = 0;
  for (int i = 0; i < 100; ++i) {
    const auto seq = model.sample(rng);
    EXPECT_TRUE(model.space().valid(seq));
    for (PassId id : seq) {
      ++total;
      if (id == PassId::Licm || id == PassId::Unroll4 ||
          id == PassId::Schedule || id == PassId::Dce)
        ++licm_hits;
    }
  }
  EXPECT_GT(static_cast<double>(licm_hits) / total, 0.6);
}

TEST(Focused, LogProbRanksLearnedSequencesHigher) {
  FocusedModel model = toy_model();
  model.set_target({9.0, 1.0});
  const double lp_good = model.log_prob(
      {PassId::Licm, PassId::Unroll4, PassId::Licm, PassId::Schedule,
       PassId::Dce});
  const double lp_bad = model.log_prob(
      {PassId::Cse, PassId::CopyProp, PassId::Cse, PassId::Peephole,
       PassId::CopyProp});
  EXPECT_GT(lp_good, lp_bad);
}

TEST(Focused, IidAndMarkovBothSampleValid) {
  for (FocusedKind kind : {FocusedKind::Iid, FocusedKind::Markov}) {
    FocusedModel model = toy_model(kind);
    model.set_target({9.0, 1.0});
    support::Rng rng(43);
    for (int i = 0; i < 20; ++i)
      EXPECT_TRUE(model.space().valid(model.sample(rng)));
  }
}

TEST(Focused, MixtureBlendsNearestComponents) {
  SequenceSpace space;
  ProgramSearchData a, b, far;
  a.program = "a";
  a.features = {0.0, 0.0};
  a.good_seqs.assign(10, {PassId::Licm, PassId::Licm, PassId::Licm,
                          PassId::Licm, PassId::Licm});
  b.program = "b";
  b.features = {1.0, 0.0};
  b.good_seqs.assign(10, {PassId::Cse, PassId::Cse, PassId::Cse,
                          PassId::Cse, PassId::Cse});
  far.program = "far";
  far.features = {100.0, 100.0};
  far.good_seqs.assign(10, {PassId::Dce, PassId::Dce, PassId::Dce,
                            PassId::Dce, PassId::Dce});
  FocusedModel model({a, b, far}, space, FocusedKind::Iid, /*mixture=*/2);
  model.set_target({0.4, 0.0});  // between a and b, far from "far"
  EXPECT_EQ(model.selected_program(), "a");
  // Samples should draw from both near components, none from "far".
  support::Rng rng(53);
  unsigned licm = 0, cse = 0, dce = 0, total = 0;
  for (int i = 0; i < 200; ++i) {
    for (PassId id : model.sample(rng)) {
      ++total;
      licm += id == PassId::Licm;
      cse += id == PassId::Cse;
      dce += id == PassId::Dce;
    }
  }
  EXPECT_GT(licm, total / 5);
  EXPECT_GT(cse, total / 10);
  EXPECT_LT(dce, total / 10);
}

TEST(Focused, GeneratorSearchUsesModelSamples) {
  wl::Workload w = wl::make_workload("fir");
  Evaluator eval(w.module, sim::amd_like());
  FocusedModel model = toy_model();
  model.set_target({9.0, 1.0});
  support::Rng rng(47);
  const auto trace = generator_search(
      eval, [&] { return model.sample(rng); }, 15);
  EXPECT_EQ(trace.evaluations, 15u);
  EXPECT_TRUE(model.space().valid(trace.best_seq));
}

TEST(Focused, SeededSearchEvaluatesSeedsFirst) {
  wl::Workload w = wl::make_workload("fir");
  Evaluator eval(w.module, sim::amd_like());
  FocusedModel model = toy_model();
  model.set_target({9.0, 1.0});
  Seeding seeding;
  seeding.seeds = {{PassId::Licm, PassId::Unroll4, PassId::Licm,
                    PassId::Schedule, PassId::Dce}};
  Evaluator probe(w.module, sim::amd_like());
  const std::uint64_t seed_cycles =
      probe.eval_sequence(seeding.seeds[0]).cycles;
  support::Rng rng(47);
  const auto trace = focused_search(eval, model, seeding, rng, 10);
  EXPECT_EQ(trace.evaluations, 10u);
  EXPECT_EQ(trace.best_so_far[0], seed_cycles);
}

// --- GA edge-case regressions ---------------------------------------------

TEST(SpaceMath, UnrollOnlySpaceWaivesAtMostOnceConstraint) {
  // A space of nothing but unroll passes used to make every sequence of
  // length >= 2 invalid under unroll_at_most_once: count() said 0 and
  // sample() rejection-looped forever. The constraint is waived when
  // there is no non-unroll alternative.
  SequenceSpace space;
  space.passes = {PassId::Unroll2, PassId::Unroll4, PassId::Unroll8};
  space.length = 3;
  EXPECT_EQ(space.count(), 27u);
  support::Rng rng(5);
  const auto seq = space.sample(rng);
  EXPECT_TRUE(space.valid(seq));
}

TEST(GaRegression, UnrollOnlySpaceTerminatesWithinBudget) {
  // repair() indexed non_unroll[rng.next_below(0)] for unroll-only
  // spaces — undefined behavior on a child with two unrolls. It now
  // keeps the extra unroll (valid() waives the constraint).
  SequenceSpace space;
  space.passes = {PassId::Unroll2, PassId::Unroll4, PassId::Unroll8};
  space.length = 3;
  wl::Workload w = wl::make_workload("fir");
  Evaluator eval(w.module, sim::amd_like());
  support::Rng rng(5);
  const auto trace = genetic_search(eval, space, rng, 24);
  EXPECT_EQ(trace.evaluations, 24u);
  EXPECT_TRUE(space.valid(trace.best_seq));
}

TEST(GaRegression, SurvivorsBelowElitesTerminatesWithinBudget) {
  // elites > population drives the survivor count below params.elites:
  // the old breeding guard computed next.size() - params.elites on
  // unsigned sizes, underflowed, bred zero children, and the generation
  // loop spun forever with zero evaluations of progress.
  wl::Workload w = wl::make_workload("crc32");
  Evaluator eval(w.module, sim::amd_like());
  support::Rng rng(3);
  GaParams params;
  params.population = 4;
  params.elites = 8;
  const auto trace =
      genetic_search(eval, SequenceSpace{}, rng, 40, Objective::Cycles, params);
  EXPECT_GE(trace.evaluations, 4u);
  EXPECT_LE(trace.evaluations, 40u);
}

// --- Pareto archive -------------------------------------------------------

TEST(Pareto, DominanceIsStrictOnAtLeastOneAxis) {
  ParetoPoint a{{}, 10, 10};
  ParetoPoint b{{}, 10, 12};
  ParetoPoint c{{}, 12, 8};
  EXPECT_TRUE(dominates(a, b));
  EXPECT_FALSE(dominates(b, a));
  EXPECT_FALSE(dominates(a, c));  // trade-off: neither dominates
  EXPECT_FALSE(dominates(c, a));
  EXPECT_FALSE(dominates(a, a));  // equal points do not dominate
}

TEST(Pareto, InsertPrunesDominatedAndKeepsSortedFront) {
  ParetoArchive archive;
  EXPECT_TRUE(archive.insert({{}, 10, 100}));
  EXPECT_TRUE(archive.insert({{}, 20, 50}));   // trade-off, kept
  EXPECT_FALSE(archive.insert({{}, 25, 60}));  // dominated by (20,50)
  EXPECT_FALSE(archive.insert({{}, 20, 50}));  // duplicate objective vector
  EXPECT_TRUE(archive.insert({{}, 5, 120}));   // new best-cycles corner
  EXPECT_TRUE(archive.insert({{}, 8, 90}));    // dominates (10,100)
  ASSERT_EQ(archive.size(), 3u);
  EXPECT_EQ(archive.front()[0].cycles, 5u);
  EXPECT_EQ(archive.front()[1].cycles, 8u);
  EXPECT_EQ(archive.front()[2].cycles, 20u);
  for (std::size_t i = 1; i < archive.size(); ++i)
    EXPECT_LT(archive.front()[i].code_size, archive.front()[i - 1].code_size);
}

TEST(Pareto, HypervolumeMatchesHandComputedRectangles) {
  ParetoArchive archive;
  archive.insert({{}, 2, 8});
  archive.insert({{}, 5, 4});
  // Reference (10, 10): slabs [2,5)x(10-8) + [5,10)x(10-4) = 6 + 30.
  EXPECT_DOUBLE_EQ(archive.hypervolume(10, 10), 36.0);
  // Points at or beyond the reference contribute nothing.
  archive.insert({{}, 1, 12});
  EXPECT_DOUBLE_EQ(archive.hypervolume(10, 10), 36.0);
  EXPECT_DOUBLE_EQ(ParetoArchive{}.hypervolume(10, 10), 0.0);
}

TEST(Pareto, GaTracksFrontAndProjectsCycles) {
  wl::Workload w = wl::make_workload("adpcm");
  Evaluator eval(w.module, sim::amd_like());
  support::Rng rng(23);
  SequenceSpace space;
  const auto trace = genetic_search(eval, space, rng, 60, Objective::Pareto);
  ASSERT_GE(trace.pareto.size(), 1u);
  // The archive's best-cycles corner is the scalar projection.
  EXPECT_EQ(trace.best_metric, trace.pareto.front().front().cycles);
  // Front is non-dominated and sorted by cycles ascending.
  const auto& front = trace.pareto.front();
  for (std::size_t i = 1; i < front.size(); ++i) {
    EXPECT_GT(front[i].cycles, front[i - 1].cycles);
    EXPECT_LT(front[i].code_size, front[i - 1].code_size);
  }
  const auto o0 = eval.eval_sequence({});
  EXPECT_GT(trace.pareto.hypervolume(o0.cycles + 1, o0.code_size + 1), 0.0);
}

// --- seeding + estimator --------------------------------------------------

TEST(Seeding, EstimatorRecoversLinearTargetRanking) {
  // Target is a pure linear function of the encoding (count of Dce), so
  // ridge regression recovers the ranking exactly.
  SequenceSpace space;
  support::Rng rng(11);
  std::vector<std::vector<PassId>> seqs;
  std::vector<double> rel;
  for (unsigned i = 0; i < 32; ++i) {
    auto seq = space.sample(rng);
    double dce = 0;
    for (PassId p : seq)
      if (p == PassId::Dce) dce += 1.0;
    seqs.push_back(seq);
    rel.push_back(1.0 - 0.1 * dce);
  }
  PerfEstimator est;
  est.fit(seqs, rel);
  ASSERT_TRUE(est.ok());
  const std::vector<PassId> no_dce = {PassId::Licm, PassId::Cse,
                                      PassId::CopyProp, PassId::Peephole,
                                      PassId::Schedule};
  const std::vector<PassId> all_dce = {PassId::Dce, PassId::Dce, PassId::Dce,
                                       PassId::Dce, PassId::Dce};
  EXPECT_LT(est.predict(all_dce), est.predict(no_dce));
}

TEST(Seeding, EstimatorBelowMinRowsStaysOff) {
  PerfEstimator est;
  est.fit({{PassId::Dce, PassId::Cse}}, {0.5});
  EXPECT_FALSE(est.ok());
}

TEST(Seeding, SeededRandomSearchEvaluatesSeedsFirstAndCountsSkips) {
  SequenceSpace space;
  wl::Workload w = wl::make_workload("fir");

  Seeding seeding;
  seeding.seeds = {{PassId::Licm, PassId::Unroll4, PassId::Licm,
                    PassId::Schedule, PassId::Dce},
                   {PassId::Cse, PassId::CopyProp, PassId::Cse,
                    PassId::Peephole, PassId::Dce}};
  Evaluator probe(w.module, sim::amd_like());
  const std::uint64_t first_seed_cycles =
      probe.eval_sequence(seeding.seeds[0]).cycles;

  // Estimator trained on uniform samples; any consistent model works.
  support::Rng train_rng(13);
  std::vector<std::vector<PassId>> seqs;
  std::vector<double> rel;
  for (unsigned i = 0; i < 16; ++i) {
    seqs.push_back(space.sample(train_rng));
    rel.push_back(1.0 - 0.01 * static_cast<double>(i % 5));
  }
  PerfEstimator est;
  est.fit(seqs, rel);
  ASSERT_TRUE(est.ok());
  seeding.estimator = &est;
  seeding.oversample = 3;

  const std::uint64_t skipped_before =
      obs::Registry::instance().counter("search.estimator.skipped").value();
  Evaluator eval(w.module, sim::amd_like());
  support::Rng rng(7);
  const auto trace = seeded_random_search(eval, space, seeding, rng, 12);
  EXPECT_EQ(trace.evaluations, 12u);
  EXPECT_EQ(trace.best_so_far[0], first_seed_cycles);
  // 10 tail slots drawn at 3x oversampling: 20 candidates skipped.
  const std::uint64_t skipped_after =
      obs::Registry::instance().counter("search.estimator.skipped").value();
  EXPECT_EQ(skipped_after - skipped_before, 20u);
}

// --- SeedBank -------------------------------------------------------------

kb::KnowledgeBase seed_kb() {
  // Two well-separated program groups: "loopy" programs whose best
  // sequences are licm-ish, "scalar" programs favoring cse. Each program
  // contributes several sequence records so cluster estimators get data.
  kb::KnowledgeBase kb;
  const std::vector<PassId> licm_best = {PassId::Licm, PassId::Unroll4,
                                         PassId::Licm, PassId::Schedule,
                                         PassId::Dce};
  const std::vector<PassId> cse_best = {PassId::Cse, PassId::CopyProp,
                                        PassId::Cse, PassId::Peephole,
                                        PassId::Dce};
  auto add_program = [&kb](const std::string& name,
                           const std::vector<double>& features,
                           const std::vector<PassId>& best) {
    SequenceSpace space;
    support::Rng rng(name.size() * 131 +
                     static_cast<unsigned char>(name.back()));
    for (unsigned i = 0; i < 8; ++i) {
      kb::ExperimentRecord rec;
      rec.program = name;
      rec.machine = "amd";
      rec.kind = "sequence";
      rec.config = sequence_to_string(i == 0 ? best : space.sample(rng));
      rec.cycles = i == 0 ? 100 : 150 + 10 * i;  // best first, rest worse
      rec.code_size = 40 + i;
      rec.static_features = features;
      kb.add(std::move(rec));
    }
  };
  add_program("loopy1", {10.0, 0.0, 1.0}, licm_best);
  add_program("loopy2", {11.0, 0.5, 1.0}, licm_best);
  add_program("scalar1", {0.0, 10.0, 1.0}, cse_best);
  add_program("scalar2", {0.5, 11.0, 1.0}, cse_best);
  return kb;
}

TEST(SeedBank, ClustersProgramsAndServesClusterBestSeeds) {
  SequenceSpace space;
  SeedBankOptions opts;
  opts.clusters = 2;
  const SeedBank bank(seed_kb(), space, opts);
  EXPECT_EQ(bank.num_programs(), 4u);
  EXPECT_EQ(bank.num_clusters(), 2u);

  // A new program near the loopy group inherits the licm-ish best.
  const auto licm_seeds = bank.seeds_for({10.5, 0.2, 1.0}, 4);
  ASSERT_FALSE(licm_seeds.empty());
  const std::vector<PassId> licm_best = {PassId::Licm, PassId::Unroll4,
                                         PassId::Licm, PassId::Schedule,
                                         PassId::Dce};
  EXPECT_EQ(licm_seeds[0], licm_best);

  const auto cse_seeds = bank.seeds_for({0.2, 10.5, 1.0}, 4);
  ASSERT_FALSE(cse_seeds.empty());
  const std::vector<PassId> cse_best = {PassId::Cse, PassId::CopyProp,
                                        PassId::Cse, PassId::Peephole,
                                        PassId::Dce};
  EXPECT_EQ(cse_seeds[0], cse_best);

  // Different groups land in different clusters.
  EXPECT_NE(bank.assign({10.5, 0.2, 1.0}), bank.assign({0.2, 10.5, 1.0}));

  // Each cluster saw 16 runs: the estimator has enough rows.
  EXPECT_NE(bank.estimator_for({10.5, 0.2, 1.0}), nullptr);
  for (const auto& seq : licm_seeds) EXPECT_TRUE(space.valid(seq));
}

TEST(SeedBank, LeaveOneOutExcludesTheTargetProgram) {
  SequenceSpace space;
  SeedBankOptions opts;
  opts.clusters = 2;
  opts.exclude_program = "loopy1";
  const SeedBank bank(seed_kb(), space, opts);
  EXPECT_EQ(bank.num_programs(), 3u);
}

TEST(SeedBank, RebuildIsDeterministic) {
  SequenceSpace space;
  SeedBankOptions opts;
  opts.clusters = 2;
  const SeedBank a(seed_kb(), space, opts);
  const SeedBank b(seed_kb(), space, opts);
  const std::vector<double> probe = {10.5, 0.2, 1.0};
  EXPECT_EQ(a.assign(probe), b.assign(probe));
  EXPECT_EQ(a.seeds_for(probe), b.seeds_for(probe));
}

TEST(SeedBank, EmptyKbYieldsEmptyBankAndEmptySeeding) {
  const SeedBank bank(kb::KnowledgeBase{}, SequenceSpace{});
  EXPECT_TRUE(bank.empty());
  const Seeding s = bank.seeding_for({1.0, 2.0, 3.0});
  EXPECT_TRUE(s.seeds.empty());
  EXPECT_EQ(s.estimator, nullptr);
}

TEST(Seeding, GaSeedsEnterInitialPopulation) {
  // Budget == 1: only the first individual is ever evaluated, and seeds
  // occupy the head of the initial population.
  SequenceSpace space;
  wl::Workload w = wl::make_workload("fir");
  Evaluator probe(w.module, sim::amd_like());
  const std::vector<PassId> seed = {PassId::Licm, PassId::Unroll4,
                                    PassId::Licm, PassId::Schedule,
                                    PassId::Dce};
  const std::uint64_t seed_cycles = probe.eval_sequence(seed).cycles;

  Evaluator eval(w.module, sim::amd_like());
  support::Rng rng(19);
  GaParams params;
  params.seeds = {seed};
  const auto trace =
      genetic_search(eval, space, rng, 1, Objective::Cycles, params);
  ASSERT_EQ(trace.evaluations, 1u);
  EXPECT_EQ(trace.best_metric, seed_cycles);
}

}  // namespace
