// ML library tests: each classifier learns separable synthetic problems,
// probability outputs are sane, and the validation protocols behave.
#include <gtest/gtest.h>

#include "ml/kmeans.hpp"
#include "ml/ml.hpp"
#include "support/rng.hpp"

namespace {

using namespace ilc::ml;
using ilc::support::Rng;

/// Two Gaussian blobs in 2-D, linearly separable.
Dataset blobs(std::uint64_t seed, int per_class, double sep = 3.0) {
  Rng rng(seed);
  Dataset d;
  for (int c = 0; c < 2; ++c)
    for (int i = 0; i < per_class; ++i) {
      const double cx = c == 0 ? -sep / 2 : sep / 2;
      d.add({cx + rng.next_double() - 0.5, rng.next_double() - 0.5}, c);
    }
  return d;
}

/// XOR-ish problem: not linearly separable, tree-friendly.
Dataset xor_data(std::uint64_t seed, int n) {
  Rng rng(seed);
  Dataset d;
  for (int i = 0; i < n; ++i) {
    const double x = rng.next_double() * 2 - 1;
    const double y = rng.next_double() * 2 - 1;
    d.add({x, y}, (x > 0) != (y > 0) ? 1 : 0);
  }
  return d;
}

Dataset three_class(std::uint64_t seed, int per_class) {
  Rng rng(seed);
  Dataset d;
  const double cx[3] = {-4, 0, 4};
  for (int c = 0; c < 3; ++c)
    for (int i = 0; i < per_class; ++i)
      d.add({cx[c] + rng.next_double() - 0.5, rng.next_double()}, c);
  return d;
}

template <typename Clf>
void expect_learns_blobs(Clf&& clf, double min_acc) {
  const Dataset train = blobs(1, 100);
  const Dataset test = blobs(2, 50);
  clf.fit(train);
  EXPECT_GE(accuracy(clf, test), min_acc) << clf.name();
}

TEST(Knn, LearnsBlobs) { expect_learns_blobs(KnnClassifier(3), 0.98); }
TEST(LogReg, LearnsBlobs) { expect_learns_blobs(LogisticRegression(), 0.98); }
TEST(DTree, LearnsBlobs) { expect_learns_blobs(DecisionTree(), 0.95); }
TEST(NBayes, LearnsBlobs) { expect_learns_blobs(NaiveBayes(), 0.98); }

TEST(DTree, LearnsXorWhereLinearFails) {
  const Dataset train = xor_data(3, 400);
  const Dataset test = xor_data(4, 200);
  DecisionTree tree;
  tree.fit(train);
  EXPECT_GE(accuracy(tree, test), 0.9);
  LogisticRegression lr;
  lr.fit(train);
  EXPECT_LT(accuracy(lr, test), 0.75);  // linear model can't do XOR
}

TEST(Knn, MulticlassAndNearest) {
  const Dataset train = three_class(5, 40);
  KnnClassifier knn(3);
  knn.fit(train);
  EXPECT_EQ(knn.predict({-4, 0.5}), 0);
  EXPECT_EQ(knn.predict({0, 0.5}), 1);
  EXPECT_EQ(knn.predict({4, 0.5}), 2);
  const std::size_t nn = knn.nearest({-4, 0.5});
  EXPECT_EQ(train.y[nn], 0);
}

TEST(LogReg, MulticlassOneVsRest) {
  const Dataset train = three_class(6, 60);
  LogisticRegression lr;
  lr.fit(train);
  EXPECT_GE(accuracy(lr, train), 0.95);
}

TEST(ProbaOutputs, SumToOne) {
  const Dataset train = three_class(7, 30);
  std::vector<std::unique_ptr<Classifier>> clfs;
  clfs.push_back(std::make_unique<KnnClassifier>(3));
  clfs.push_back(std::make_unique<LogisticRegression>());
  clfs.push_back(std::make_unique<DecisionTree>());
  clfs.push_back(std::make_unique<NaiveBayes>());
  for (auto& clf : clfs) {
    clf->fit(train);
    const auto p = clf->predict_proba({1.0, 0.3});
    ASSERT_EQ(p.size(), 3u) << clf->name();
    double total = 0;
    for (double v : p) {
      EXPECT_GE(v, 0.0) << clf->name();
      total += v;
    }
    EXPECT_NEAR(total, 1.0, 1e-9) << clf->name();
  }
}

TEST(DTree, RespectsDepthLimit) {
  DecisionTree::Config cfg;
  cfg.max_depth = 1;
  DecisionTree stump(cfg);
  stump.fit(xor_data(8, 200));
  EXPECT_LE(stump.node_count(), 3u);  // root + two leaves
}

TEST(Dataset, WithoutRemovesExactlyOneRow) {
  Dataset d = blobs(9, 5);
  const Dataset d2 = d.without(3);
  EXPECT_EQ(d2.size(), d.size() - 1);
  EXPECT_EQ(d2.num_classes, d.num_classes);
}

TEST(Dataset, SplitByGroup) {
  Dataset d;
  d.add({0}, 0);
  d.add({1}, 1);
  d.add({2}, 0);
  const std::vector<int> groups = {0, 1, 0};
  auto [train, test] = Dataset::split_by_group(d, groups, 0);
  EXPECT_EQ(test.size(), 2u);
  EXPECT_EQ(train.size(), 1u);
}

TEST(Validation, LoocvHighOnSeparableData) {
  const Dataset d = blobs(10, 20);
  const double acc =
      loocv_accuracy([] { return std::make_unique<KnnClassifier>(3); }, d);
  EXPECT_GE(acc, 0.95);
}

TEST(Validation, LogoCoversEachGroup) {
  Dataset d = blobs(11, 30);
  std::vector<int> groups(d.size());
  for (std::size_t i = 0; i < groups.size(); ++i)
    groups[i] = static_cast<int>(i % 3);
  const auto accs = logo_accuracy(
      [] { return std::make_unique<NaiveBayes>(); }, d, groups, 3);
  ASSERT_EQ(accs.size(), 3u);
  for (double a : accs) EXPECT_GE(a, 0.9);
}

TEST(Validation, ConfusionDiagonalDominates) {
  const Dataset d = blobs(12, 50);
  KnnClassifier knn(1);
  knn.fit(d);
  const auto m = confusion(knn, d);
  EXPECT_GE(m[0][0], 49u);
  EXPECT_GE(m[1][1], 49u);
}

TEST(Determinism, SameDataSameModel) {
  const Dataset d = three_class(13, 25);
  LogisticRegression a, b;
  a.fit(d);
  b.fit(d);
  for (int i = 0; i < 20; ++i) {
    const std::vector<double> x = {static_cast<double>(i) - 10, 0.5};
    EXPECT_EQ(a.predict(x), b.predict(x));
  }
}

// --- k-means --------------------------------------------------------------

std::vector<std::vector<double>> two_blobs(unsigned per_blob) {
  std::vector<std::vector<double>> rows;
  Rng rng(29);
  for (unsigned i = 0; i < per_blob; ++i)
    rows.push_back({10.0 + rng.next_double(), 10.0 + rng.next_double()});
  for (unsigned i = 0; i < per_blob; ++i)
    rows.push_back({-10.0 + rng.next_double(), -10.0 + rng.next_double()});
  return rows;
}

TEST(KMeans, SeparatesWellSeparatedBlobs) {
  const auto rows = two_blobs(20);
  Rng rng(7);
  const auto km = kmeans(rows, 2, rng);
  ASSERT_EQ(km.centroids.size(), 2u);
  ASSERT_EQ(km.assignment.size(), rows.size());
  // Every member of a blob lands in the same cluster; the two blobs in
  // different clusters.
  for (unsigned i = 1; i < 20; ++i)
    EXPECT_EQ(km.assignment[i], km.assignment[0]);
  for (unsigned i = 21; i < 40; ++i)
    EXPECT_EQ(km.assignment[i], km.assignment[20]);
  EXPECT_NE(km.assignment[0], km.assignment[20]);
  // Inertia of a tight blob clustering is small relative to the spread.
  EXPECT_LT(km.inertia, 40.0);
}

TEST(KMeans, NearestCentroidBreaksTiesTowardLowestIndex) {
  const std::vector<std::vector<double>> centroids = {{1.0}, {3.0}, {1.0}};
  EXPECT_EQ(nearest_centroid(centroids, {1.0}), 0u);  // exact tie: 0 wins
  EXPECT_EQ(nearest_centroid(centroids, {2.0}), 0u);  // equidistant: 0 wins
  EXPECT_EQ(nearest_centroid(centroids, {2.9}), 1u);
}

TEST(KMeans, SameSeedSameClustering) {
  const auto rows = two_blobs(15);
  Rng a(123), b(123);
  const auto ka = kmeans(rows, 3, a);
  const auto kb = kmeans(rows, 3, b);
  EXPECT_EQ(ka.assignment, kb.assignment);
  EXPECT_EQ(ka.centroids, kb.centroids);
  EXPECT_EQ(ka.inertia, kb.inertia);
}

TEST(KMeans, ClampsKToRowCountAndHandlesDuplicates) {
  const std::vector<std::vector<double>> rows = {{1.0, 1.0}, {1.0, 1.0},
                                                 {2.0, 2.0}};
  Rng rng(5);
  const auto km = kmeans(rows, 8, rng);
  EXPECT_EQ(km.centroids.size(), 3u);  // k clamped to n
  EXPECT_DOUBLE_EQ(km.inertia, 0.0);   // every row sits on a centroid
}

TEST(KMeans, EmptyInputYieldsEmptyResult) {
  Rng rng(1);
  const auto km = kmeans({}, 4, rng);
  EXPECT_TRUE(km.centroids.empty());
  EXPECT_TRUE(km.assignment.empty());
}

}  // namespace
