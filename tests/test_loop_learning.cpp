// Tests for the per-loop machinery behind the learned unroll-factor case
// study: selective unrolling, loop features, and canonicalization.
#include <gtest/gtest.h>

#include "features/features.hpp"
#include "ir/analysis.hpp"
#include "ir/verifier.hpp"
#include "opt/pass.hpp"
#include "opt/pipelines.hpp"
#include "sim/interpreter.hpp"
#include "workloads/workloads.hpp"

namespace {

using namespace ilc;
using namespace ilc::ir;

TEST(UnrollSingle, UnrollsExactlyTheRequestedLoop) {
  wl::Workload w = wl::make_workload("dotprod");  // two sibling loops
  Function& fn = w.module.function(w.module.find_function("main"));
  const auto loops = find_loops(fn);
  ASSERT_GE(loops.size(), 2u);

  const std::size_t size_before = fn.size();
  ASSERT_TRUE(opt::unroll_single_loop(fn, loops[0].header, 4));
  const std::size_t grown = fn.size() - size_before;
  EXPECT_GT(grown, 0u);

  // The other loop must be untouched: its body size is unchanged.
  const auto loops_after = find_loops(fn);
  std::size_t other_body = 0, other_body_before = 0;
  for (BlockId b : loops[1].blocks)
    other_body_before += 1;  // block count proxy
  for (const auto& l : loops_after)
    if (l.header == loops[1].header) other_body = l.blocks.size();
  EXPECT_EQ(other_body, other_body_before);

  ASSERT_EQ(verify(w.module), "");
  sim::Simulator s(w.module, sim::amd_like());
  EXPECT_EQ(s.run().ret, w.expected_checksum);
}

TEST(UnrollSingle, ReturnsFalseForUnknownHeader) {
  wl::Workload w = wl::make_workload("fir");
  Function& fn = w.module.function(w.module.find_function("main"));
  EXPECT_FALSE(opt::unroll_single_loop(fn, 9999, 2));
}

TEST(UnrollSingle, RejectsNonInnermostLoops) {
  wl::Workload w = wl::make_workload("matmul");  // triple nest
  Function& fn = w.module.function(w.module.find_function("main"));
  const auto loops = find_loops(fn);
  // Find an outer loop: one containing another loop's header.
  BlockId outer = kNoBlock;
  for (const auto& a : loops)
    for (const auto& b : loops)
      if (a.header != b.header && a.contains(b.header)) outer = a.header;
  ASSERT_NE(outer, kNoBlock);
  EXPECT_FALSE(opt::unroll_single_loop(fn, outer, 2));
}

TEST(UnrollSingle, AllFactorsPreserveSemantics) {
  for (unsigned factor : {2u, 4u, 8u}) {
    wl::Workload w = wl::make_workload("crc32");
    Function& fn = w.module.function(w.module.find_function("main"));
    const auto loops = find_loops(fn);
    for (const auto& loop : loops)
      opt::unroll_single_loop(fn, loop.header, factor);
    opt::simplify_cfg(fn);
    ASSERT_EQ(verify(w.module), "");
    sim::Simulator s(w.module, sim::amd_like());
    EXPECT_EQ(s.run().ret, w.expected_checksum) << "factor " << factor;
  }
}

TEST(LoopFeatures, ShapeAndRanges) {
  wl::Workload w = wl::make_workload("mcf_lite");
  for (const auto& fn : w.module.functions()) {
    for (const auto& loop : find_loops(fn)) {
      const auto f = feat::extract_loop_features(fn, loop);
      ASSERT_EQ(f.size(), feat::loop_feature_names().size());
      EXPECT_GT(f[0], 0.0);               // body size
      EXPECT_GE(f[1], 1.0);               // blocks
      for (std::size_t i = 2; i <= 5; ++i) {
        EXPECT_GE(f[i], 0.0);
        EXPECT_LE(f[i], 1.0);             // ratios
      }
    }
  }
}

TEST(LoopFeatures, DiscriminateMemoryVsAluLoops) {
  wl::Workload mem = wl::make_workload("linklist");
  wl::Workload alu = wl::make_workload("sha_lite");
  auto loop_load_ratio = [](const ir::Module& m) {
    double best = 0;
    for (const auto& fn : m.functions())
      for (const auto& loop : find_loops(fn))
        best = std::max(best, feat::extract_loop_features(fn, loop)[2]);
    return best;
  };
  EXPECT_GT(loop_load_ratio(mem.module), loop_load_ratio(alu.module));
}

TEST(Canonicalize, IdempotentAndSemanticsPreserving) {
  for (const auto& name : {"adpcm", "mcf_lite", "stencil"}) {
    wl::Workload w = wl::make_workload(name);
    opt::canonicalize(w.module);
    ASSERT_EQ(verify(w.module), "") << name;
    const std::size_t once = w.module.code_size();
    opt::canonicalize(w.module);
    EXPECT_EQ(w.module.code_size(), once) << name << " not idempotent";
    sim::Simulator s(w.module, sim::amd_like());
    EXPECT_EQ(s.run().ret, w.expected_checksum) << name;
  }
}

TEST(Canonicalize, NeverGrowsCode) {
  for (const auto& name : wl::workload_names()) {
    wl::Workload w = wl::make_workload(name);
    const std::size_t before = w.module.code_size();
    opt::canonicalize(w.module);
    EXPECT_LE(w.module.code_size(), before) << name;
  }
}

}  // namespace
