// Learned-scheduling case study tests (paper Section II): instance
// generation at decision points, scoreboard cost model, classifier
// training, and integration of the induced heuristic.
#include <gtest/gtest.h>

#include "ir/builder.hpp"
#include "ir/verifier.hpp"
#include "opt/pass.hpp"
#include "sched/sched.hpp"
#include "sim/interpreter.hpp"
#include "workloads/workloads.hpp"

namespace {

using namespace ilc;
using namespace ilc::ir;

TEST(OrderCost, PrefersLatencyHiding) {
  // mul (lat 3) followed immediately by its consumer stalls; filling the
  // gap with independent work is cheaper.
  std::vector<Instr> insts;
  auto mk = [&](Opcode op, Reg dst, Reg a, Reg b) {
    Instr i;
    i.op = op;
    i.dst = dst;
    i.a = a;
    i.b = b;
    return i;
  };
  Instr imm0;
  imm0.op = Opcode::LoadImm;
  imm0.dst = 0;
  imm0.imm = 3;
  insts.push_back(imm0);                              // 0: r0 = 3
  insts.push_back(mk(Opcode::Mul, 1, 0, 0));          // 1: r1 = r0*r0
  insts.push_back(mk(Opcode::Add, 2, 1, 0));          // 2: r2 = r1+r0 (stalls)
  Instr immx;
  immx.op = Opcode::LoadImm;
  immx.dst = 3;
  immx.imm = 9;
  insts.push_back(immx);                              // 3: independent
  // Evaluate single-issue so the pairing effect doesn't mask the stall.
  const std::uint64_t naive = sched::order_cost(insts, {0, 1, 2, 3}, 1);
  const std::uint64_t hidden = sched::order_cost(insts, {0, 1, 3, 2}, 1);
  EXPECT_LT(hidden, naive);
}

TEST(OrderCost, GreedyMatchesOrEqualsOriginalOnWorkloads) {
  wl::Workload w = wl::make_workload("sha_lite");
  for (const auto& fn : w.module.functions()) {
    for (const auto& bb : fn.blocks) {
      if (bb.insts.size() < 4) continue;
      const std::vector<Instr> body(bb.insts.begin(), bb.insts.end() - 1);
      std::vector<std::size_t> ident(body.size());
      for (std::size_t i = 0; i < ident.size(); ++i) ident[i] = i;
      EXPECT_LE(sched::greedy_schedule_cost(body),
                sched::order_cost(body, ident));
    }
  }
}

TEST(Instances, GeneratedWithConsistentShape) {
  support::Rng rng(5);
  std::vector<sched::Instance> all;
  for (const auto& name : {"adpcm", "matmul", "sha_lite", "stencil"}) {
    wl::Workload w = wl::make_workload(name);
    for (const auto& fn : w.module.functions()) {
      const auto inst = sched::generate_instances(fn, rng);
      all.insert(all.end(), inst.begin(), inst.end());
    }
  }
  ASSERT_GT(all.size(), 10u);
  for (const auto& i : all) {
    EXPECT_EQ(i.features.size(), sched::pair_feature_names().size());
    EXPECT_TRUE(i.label == 0 || i.label == 1);
  }
  // Both labels must occur (the pairs are randomly ordered).
  bool has0 = false, has1 = false;
  for (const auto& i : all) {
    has0 |= i.label == 0;
    has1 |= i.label == 1;
  }
  EXPECT_TRUE(has0);
  EXPECT_TRUE(has1);
}

TEST(Instances, DatasetConversion) {
  wl::Workload w = wl::make_workload("fir");
  support::Rng rng(6);
  std::vector<sched::Instance> all;
  for (const auto& fn : w.module.functions()) {
    const auto inst = sched::generate_instances(fn, rng);
    all.insert(all.end(), inst.begin(), inst.end());
  }
  const ml::Dataset d = sched::to_dataset(all);
  EXPECT_EQ(d.size(), all.size());
  EXPECT_EQ(d.num_classes, 2);
}

TEST(LearnedScheduler, HeightOracleReproducesGreedyBehaviour) {
  // A "classifier" that just compares critical-path heights must act like
  // the hand-written greedy scheduler.
  class HeightOracle : public ml::Classifier {
   public:
    void fit(const ml::Dataset&) override {}
    int predict(const std::vector<double>& x) const override {
      return x[0] > 0 ? 1 : (x[0] < 0 ? 0 : (x[7] < 0 ? 1 : 0));
    }
    std::string name() const override { return "height-oracle"; }
  };

  wl::Workload learned = wl::make_workload("sha_lite");
  wl::Workload greedy = wl::make_workload("sha_lite");
  HeightOracle oracle;
  for (auto& fn : learned.module.functions())
    sched::schedule_with_model(fn, oracle);
  for (auto& fn : greedy.module.functions()) opt::schedule_blocks(fn);

  ASSERT_EQ(verify(learned.module), "");
  sim::Simulator s_l(learned.module, sim::amd_like());
  sim::Simulator s_g(greedy.module, sim::amd_like());
  const auto rl = s_l.run();
  const auto rg = s_g.run();
  EXPECT_EQ(rl.ret, learned.expected_checksum);
  // Same priority rule => near-identical schedules (tournament tie-breaks
  // may differ from the greedy scan by a hair).
  EXPECT_NEAR(static_cast<double>(rl.cycles), static_cast<double>(rg.cycles),
              0.01 * static_cast<double>(rg.cycles));
}

TEST(LearnedScheduler, TrainedModelPreservesSemanticsEverywhere) {
  // Train on a few workloads, apply to all (incl. unseen) — semantics
  // must hold regardless of model quality.
  support::Rng rng(9);
  std::vector<sched::Instance> train;
  for (const auto& name : {"adpcm", "fir", "matmul"}) {
    wl::Workload w = wl::make_workload(name);
    for (const auto& fn : w.module.functions()) {
      const auto inst = sched::generate_instances(fn, rng);
      train.insert(train.end(), inst.begin(), inst.end());
    }
  }
  ml::LogisticRegression model;
  model.fit(sched::to_dataset(train));

  for (const auto& name : wl::workload_names()) {
    wl::Workload w = wl::make_workload(name);
    for (auto& fn : w.module.functions())
      sched::schedule_with_model(fn, model);
    ASSERT_EQ(verify(w.module), "") << name;
    sim::Simulator s(w.module, sim::amd_like());
    EXPECT_EQ(s.run().ret, w.expected_checksum) << name;
  }
}

TEST(LearnedScheduler, LearnedHeuristicIsCompetitive) {
  // The central Section II claim: induced heuristics are comparable to
  // the hand-tuned one. Train leave-one-out for sha_lite, compare cycles.
  support::Rng rng(11);
  std::vector<sched::Instance> train;
  for (const auto& name : wl::workload_names()) {
    if (std::string(name) == "sha_lite") continue;
    wl::Workload w = wl::make_workload(name);
    sched::prepare_for_scheduling(w.module);
    for (const auto& fn : w.module.functions()) {
      const auto inst = sched::generate_instances(fn, rng);
      train.insert(train.end(), inst.begin(), inst.end());
    }
  }
  ml::DecisionTree model;
  model.fit(sched::to_dataset(train));

  wl::Workload learned = wl::make_workload("sha_lite");
  wl::Workload greedy = wl::make_workload("sha_lite");
  wl::Workload baseline = wl::make_workload("sha_lite");
  sched::prepare_for_scheduling(learned.module);
  sched::prepare_for_scheduling(greedy.module);
  sched::prepare_for_scheduling(baseline.module);
  for (auto& fn : learned.module.functions())
    sched::schedule_with_model(fn, model);
  for (auto& fn : greedy.module.functions()) opt::schedule_blocks(fn);

  sim::Simulator s_l(learned.module, sim::amd_like());
  sim::Simulator s_g(greedy.module, sim::amd_like());
  sim::Simulator s_b(baseline.module, sim::amd_like());
  const auto cl = s_l.run().cycles;
  const auto cg = s_g.run().cycles;
  const auto cb = s_b.run().cycles;
  // "Comparable to hand-tuned" (the paper's claim): within 5% of both the
  // critical-path scheduler and the unscheduled baseline.
  EXPECT_LE(static_cast<double>(cl), 1.05 * static_cast<double>(cb));
  EXPECT_LE(static_cast<double>(cl), 1.05 * static_cast<double>(cg));
}

}  // namespace
