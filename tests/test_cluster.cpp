// ilc::cluster tests: the control plane's deterministic fault suite.
// Health state-machine debounce (Suspect grace, Recovering debounce,
// relapse), ping probes over the real line protocol with failpoint-driven
// leader death, promotion of the most-caught-up follower onto a fenced
// generation with followers re-pointed and byte-identical, the
// resurrected old leader refused on both planes (WAL generation by the
// split-brain handshake, registry re-announcement by the epoch fence),
// clients observing the epoch bump, and scatter-gather degrading to an
// explicit partial result while a shard is dark. Failures are injected
// (support::failpoint, dead ports, killed servers), never timed.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "cluster/health.hpp"
#include "cluster/promote.hpp"
#include "cluster/registry.hpp"
#include "cluster/scatter.hpp"
#include "kbstore/store.hpp"
#include "net/server.hpp"
#include "repl/applier.hpp"
#include "repl/router.hpp"
#include "repl/ship.hpp"
#include "repl/transport.hpp"
#include "repl/wire.hpp"
#include "support/failpoint.hpp"
#include "svc/service.hpp"

namespace {

namespace fs = std::filesystem;

using namespace ilc;

struct TempDir {
  explicit TempDir(const char* name) : path(name) { fs::remove_all(path); }
  ~TempDir() { fs::remove_all(path); }
  std::string path;
};

kb::ExperimentRecord sample(const std::string& program, std::uint64_t cycles) {
  kb::ExperimentRecord r;
  r.program = program;
  r.machine = "amd-like";
  r.kind = "sequence";
  r.config = "constprop,dce,licm";
  r.cycles = cycles;
  r.code_size = 100;
  r.static_features = {1.5, -2.25};
  return r;
}

kbstore::Options every_append() {
  kbstore::Options opts;
  opts.flush = kbstore::Options::Flush::EveryAppend;
  opts.background_compaction = false;
  return opts;
}

bool deliver(repl::Applier& a, const std::string& bytes,
             std::string* why = nullptr) {
  repl::MsgReader reader;
  reader.feed(bytes);
  repl::Msg m;
  while (reader.next(m) == repl::MsgReader::Status::Ok)
    if (!a.apply(m, why)) return false;
  return true;
}

/// In-process replication (no transport): handshake, then poll/deliver
/// until the follower reaches the leader's on-disk position.
bool pipe_replicate(const std::string& leader_dir, repl::Applier& a,
                    std::string* why = nullptr) {
  repl::ShipSource src(leader_dir);
  std::string out;
  if (!src.handshake(a.hello(), out, why)) {
    deliver(a, out);  // the Reject reaches the follower too
    return false;
  }
  const auto target = src.position();
  if (!target) return false;
  for (int i = 0; i < 1000; ++i) {
    out.clear();
    if (!src.poll(out)) return false;
    if (!deliver(a, out, why)) return false;
    const kbstore::WalPosition pos = a.position();
    if (pos.generation == target->generation && pos.seq == target->seq &&
        pos.chain_crc == target->chain_crc)
      return true;
  }
  return false;
}

/// TCP catch-up gate: follower position == the leader's on-disk position.
bool wait_position(const std::string& leader_dir, const repl::Applier& a,
                   int timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    const auto target = repl::ShipSource(leader_dir).position();
    if (target) {
      const kbstore::WalPosition pos = a.position();
      if (pos.generation == target->generation && pos.seq == target->seq &&
          pos.chain_crc == target->chain_crc)
        return true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return false;
}

/// A controllable probe: per-port verdicts, flipped by the test between
/// rounds. Every "failure" is a flag, not a timeout.
struct ProbeScript {
  std::vector<std::uint16_t> down;
  bool operator()(const repl::Endpoint& ep) const {
    for (const std::uint16_t p : down)
      if (p == ep.port) return false;
    return true;
  }
};

struct FailpointGuard {
  ~FailpointGuard() { support::Failpoints::instance().unset_all(); }
};

// --- health state machine -------------------------------------------------

TEST(ClusterHealth, DebouncesDownAndRecovery) {
  obs::Registry metrics;
  cluster::HealthOptions opts;
  opts.down_after = 3;
  opts.up_after = 2;
  opts.registry = &metrics;
  auto script = std::make_shared<ProbeScript>();
  opts.probe = [script](const repl::Endpoint& ep) { return (*script)(ep); };
  cluster::HealthMonitor monitor(opts);

  const repl::Endpoint ep{"127.0.0.1", 9100};
  monitor.add(ep);
  monitor.add(ep);  // duplicate ignored
  EXPECT_EQ(monitor.states().size(), 1u);
  EXPECT_EQ(monitor.state(ep), cluster::Health::Healthy);

  std::vector<std::pair<cluster::Health, cluster::Health>> changes;
  monitor.on_change([&](const repl::Endpoint&, cluster::Health from,
                        cluster::Health to) { changes.emplace_back(from, to); });

  // One dropped probe: Suspect, not Down — the grace period.
  script->down = {ep.port};
  monitor.probe_all_once();
  EXPECT_EQ(monitor.state(ep), cluster::Health::Suspect);

  // A good probe clears suspicion entirely.
  script->down = {};
  monitor.probe_all_once();
  EXPECT_EQ(monitor.state(ep), cluster::Health::Healthy);

  // down_after consecutive failures: Suspect, Suspect, Down.
  script->down = {ep.port};
  monitor.probe_all_once();
  monitor.probe_all_once();
  EXPECT_EQ(monitor.state(ep), cluster::Health::Suspect);
  monitor.probe_all_once();
  EXPECT_EQ(monitor.state(ep), cluster::Health::Down);

  // Recovery debounce: first success only Recovering, second Healthy.
  script->down = {};
  monitor.probe_all_once();
  EXPECT_EQ(monitor.state(ep), cluster::Health::Recovering);
  monitor.probe_all_once();
  EXPECT_EQ(monitor.state(ep), cluster::Health::Healthy);

  // Relapse while Recovering goes straight back to Down.
  script->down = {ep.port};
  monitor.probe_all_once();
  monitor.probe_all_once();
  monitor.probe_all_once();
  EXPECT_EQ(monitor.state(ep), cluster::Health::Down);
  script->down = {};
  monitor.probe_all_once();
  EXPECT_EQ(monitor.state(ep), cluster::Health::Recovering);
  script->down = {ep.port};
  monitor.probe_all_once();
  EXPECT_EQ(monitor.state(ep), cluster::Health::Down);

  // The observed transition sequence, exactly.
  using H = cluster::Health;
  const std::vector<std::pair<H, H>> expected = {
      {H::Healthy, H::Suspect},    {H::Suspect, H::Healthy},
      {H::Healthy, H::Suspect},    {H::Suspect, H::Down},
      {H::Down, H::Recovering},    {H::Recovering, H::Healthy},
      {H::Healthy, H::Suspect},    {H::Suspect, H::Down},
      {H::Down, H::Recovering},    {H::Recovering, H::Down},
  };
  EXPECT_EQ(changes, expected);

  // Counters: only real Down / full recoveries, not Suspect wobble.
  EXPECT_EQ(metrics.counter("cluster.mark_down").value(), 3u);
  EXPECT_EQ(metrics.counter("cluster.mark_up").value(), 1u);

  monitor.remove(ep);
  EXPECT_TRUE(monitor.states().empty());
  EXPECT_EQ(monitor.state(ep), cluster::Health::Down);  // unknown = dark
}

TEST(ClusterHealth, DrivesRouterFallbackAndRecovery) {
  obs::Registry metrics;
  const repl::Endpoint primary{"127.0.0.1", 9200};
  const repl::Endpoint follower{"127.0.0.1", 9201};
  repl::Router router({{primary, {follower}}}, &metrics);

  cluster::HealthOptions opts;
  opts.down_after = 2;
  opts.up_after = 1;
  opts.registry = &metrics;
  auto script = std::make_shared<ProbeScript>();
  opts.probe = [script](const repl::Endpoint& ep) { return (*script)(ep); };
  cluster::HealthMonitor monitor(opts);
  monitor.add(primary);
  monitor.add(follower);
  monitor.watch(&router);

  script->down = {primary.port};
  monitor.probe_all_once();  // Suspect: the router still routes primary
  auto r = router.route_shard(0);
  ASSERT_TRUE(r.has_value());
  EXPECT_FALSE(r->read_only);

  monitor.probe_all_once();  // Down: fallback engages
  r = router.route_shard(0);
  ASSERT_TRUE(r.has_value());
  EXPECT_TRUE(r->read_only);
  EXPECT_EQ(r->endpoint, follower);

  script->down = {};
  monitor.probe_all_once();  // up_after=1: straight back to Healthy
  r = router.route_shard(0);
  ASSERT_TRUE(r.has_value());
  EXPECT_FALSE(r->read_only);
  EXPECT_EQ(r->endpoint, primary);
}

// --- ping probe over the real protocol ------------------------------------

TEST(ClusterHealth, PingProbeSpeaksTheLineProtocol) {
  svc::TuningService::Options opts;
  opts.workers = 1;
  opts.shard_index = 1;
  opts.shard_count = 3;
  svc::TuningService service(opts);
  net::Server server(service, {});
  const repl::Endpoint ep{"127.0.0.1", server.port()};

  EXPECT_TRUE(cluster::ping_probe(ep, 2000));
  EXPECT_FALSE(cluster::ping_probe({"127.0.0.1", 1}, 200));  // dead port

  // The failpoint is the deterministic "leader died" of the fault suite.
  FailpointGuard guard;
  ASSERT_TRUE(
      support::Failpoints::instance().configure("cluster.probe=error*2"));
  EXPECT_FALSE(cluster::ping_probe(ep, 2000));
  EXPECT_FALSE(cluster::ping_probe(ep, 2000));
  EXPECT_TRUE(cluster::ping_probe(ep, 2000));  // *2 exhausted

  server.shutdown();
}

// --- promotion ------------------------------------------------------------

TEST(ClusterPromoter, PicksTheMostCaughtUpReplica) {
  EXPECT_EQ(cluster::Promoter::pick({}), 0u);  // empty: size() == 0

  TempDir ahead_leader("cluster_pick_ahead_leader");
  TempDir behind_leader("cluster_pick_behind_leader");
  {
    auto a = kbstore::Store::open(ahead_leader.path, every_append());
    auto b = kbstore::Store::open(behind_leader.path, every_append());
    ASSERT_TRUE(a && b);
    for (int i = 0; i < 5; ++i)
      a->append(sample("p" + std::to_string(i), 100 + i));
    b->append(sample("q", 7));
  }

  TempDir fa("cluster_pick_fa"), fb("cluster_pick_fb"), fc("cluster_pick_fc");
  std::shared_ptr<repl::Applier> a1 = repl::Applier::open(fa.path);
  std::shared_ptr<repl::Applier> a2 = repl::Applier::open(fb.path);
  std::shared_ptr<repl::Applier> a3 = repl::Applier::open(fc.path);
  ASSERT_TRUE(a1 && a2 && a3);
  ASSERT_TRUE(pipe_replicate(behind_leader.path, *a1));
  ASSERT_TRUE(pipe_replicate(ahead_leader.path, *a2));
  ASSERT_TRUE(pipe_replicate(ahead_leader.path, *a3));

  std::vector<cluster::Replica> replicas;
  replicas.push_back({fa.path, a1, nullptr});
  replicas.push_back({fb.path, a2, nullptr});
  replicas.push_back({fc.path, a3, nullptr});
  // Highest (generation, seq) wins; the tie between 1 and 2 goes to the
  // lower index.
  EXPECT_EQ(cluster::Promoter::pick(replicas), 1u);
  replicas.erase(replicas.begin() + 1);
  EXPECT_EQ(cluster::Promoter::pick(replicas), 1u);  // fc over fa
  replicas[1].applier = nullptr;
  EXPECT_EQ(cluster::Promoter::pick(replicas), 0u);  // dead applier skipped
}

TEST(ClusterPromoter, FailoverPromotesFencesAndRepointsFollowers) {
  TempDir leader("cluster_failover_leader");
  TempDir f1("cluster_failover_f1"), f2("cluster_failover_f2");

  auto store = kbstore::Store::open(leader.path, every_append());
  ASSERT_TRUE(store);
  for (int i = 0; i < 4; ++i)
    store->append(sample("p" + std::to_string(i), 100 + i));
  auto ship = repl::ShipServer::start(leader.path, 0);
  ASSERT_TRUE(ship);

  repl::Applier::Options aopts;
  aopts.store = every_append();  // promoted-leader appends ship instantly
  std::shared_ptr<repl::Applier> a1 = repl::Applier::open(f1.path, aopts);
  std::shared_ptr<repl::Applier> a2 = repl::Applier::open(f2.path, aopts);
  ASSERT_TRUE(a1 && a2);
  auto c1 = repl::ShipClient::start(*a1, ship->port());
  auto c2 = repl::ShipClient::start(*a2, ship->port());
  ASSERT_TRUE(wait_position(leader.path, *a1, 30000));
  ASSERT_TRUE(wait_position(leader.path, *a2, 30000));
  const std::uint64_t old_generation = a1->position().generation;

  // The leader dies: shipping gone, store closed. Its directory stays —
  // it will resurrect below.
  ship.reset();
  store.reset();

  obs::Registry metrics;
  cluster::PromoterOptions popts;
  popts.registry = &metrics;
  cluster::Promoter promoter(popts);
  std::vector<cluster::Replica> replicas;
  replicas.push_back({f1.path, a1, std::move(c1)});
  replicas.push_back({f2.path, a2, std::move(c2)});
  cluster::PromotionResult promo = promoter.failover(replicas);
  ASSERT_TRUE(promo.ok) << promo.why;
  EXPECT_EQ(promo.chosen, 0u);  // equally caught up: lowest index
  EXPECT_EQ(promo.generation, old_generation + 1);  // fencing compaction
  EXPECT_TRUE(a1->promoted());
  EXPECT_FALSE(replicas[0].client);  // the new leader follows nobody
  ASSERT_TRUE(replicas[1].client);   // ...and f2 now follows it
  EXPECT_EQ(promoter.failovers(), 1u);

  // The promoted store accepts writes; the re-pointed follower converges
  // onto the new generation, byte-identical.
  promo.store->append(sample("post-failover", 9));
  ASSERT_TRUE(wait_position(f1.path, *a2, 30000));
  EXPECT_EQ(a2->position().generation, promo.generation);
  EXPECT_EQ(repl::divergence(f1.path, f2.path), std::nullopt);

  // Data-plane fence, inbound: the promoted applier refuses any further
  // replication stream.
  std::string why;
  EXPECT_FALSE(pipe_replicate(leader.path, *a1, &why));
  EXPECT_FALSE(why.empty());

  // Data-plane fence, outbound: the resurrected old leader's stream is
  // rejected by a follower on the promoted generation (split-brain
  // check: follower generation ahead).
  replicas[1].client.reset();  // stop following the new leader
  auto old_ship = repl::ShipServer::start(leader.path, 0);
  ASSERT_TRUE(old_ship);
  auto resurrect = repl::ShipClient::start(*a2, old_ship->port());
  ASSERT_TRUE(resurrect);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (!resurrect->stopped() &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_TRUE(resurrect->stopped());
  why.clear();
  EXPECT_TRUE(a2->rejected(&why));
  EXPECT_NE(why.find("split-brain"), std::string::npos) << why;

  // A second failover over the same shard finds nothing new to do for
  // the already-promoted replica.
  std::vector<cluster::Replica> again;
  again.push_back({f1.path, a1, nullptr});
  const cluster::PromotionResult second = promoter.failover(again);
  EXPECT_FALSE(second.ok);
  EXPECT_NE(second.why.find("promoted"), std::string::npos) << second.why;
}

// --- registry -------------------------------------------------------------

TEST(ClusterRegistry, ShardMapCodecRoundTrips) {
  cluster::ShardMap map;
  map.epoch = 42;
  map.shards.resize(3);
  map.shards[0].leader = {"127.0.0.1", 7100};
  map.shards[0].ship_port = 7200;
  map.shards[0].followers = {{"127.0.0.1", 7101}, {"127.0.0.1", 7102}};
  map.shards[0].health = "healthy";
  map.shards[1].leader = {"127.0.0.1", 7110};
  map.shards[1].health = "down";
  // shards[2] never announced: no leader.

  cluster::ShardMap back;
  ASSERT_TRUE(cluster::decode_shard_map(cluster::encode_shard_map(map), back));
  EXPECT_EQ(back.epoch, 42u);
  ASSERT_EQ(back.shards.size(), 3u);
  EXPECT_EQ(back.shards[0].leader, map.shards[0].leader);
  EXPECT_EQ(back.shards[0].ship_port, 7200);
  EXPECT_EQ(back.shards[0].followers, map.shards[0].followers);
  EXPECT_EQ(back.shards[1].health, "down");
  EXPECT_EQ(back.shards[2].leader.port, 0);  // "-" decodes to unset

  // Truncation (no "end") is malformed, not silently accepted.
  auto lines = cluster::encode_shard_map(map);
  lines.pop_back();
  EXPECT_FALSE(cluster::decode_shard_map(lines, back));

  const auto shards = cluster::to_router_shards(map);
  ASSERT_EQ(shards.size(), 3u);
  EXPECT_EQ(shards[0].primary.port, 7100);
  ASSERT_EQ(shards[0].followers.size(), 2u);
}

TEST(ClusterRegistry, FencesStaleLeadershipAnnouncements) {
  obs::Registry metrics;
  cluster::Registry registry(1, &metrics);
  const repl::Endpoint old_leader{"127.0.0.1", 7100};
  const repl::Endpoint new_leader{"127.0.0.1", 7101};

  ASSERT_TRUE(registry.lead(0, old_leader, 7200, registry.epoch()));
  const std::uint64_t stale = registry.epoch();
  ASSERT_TRUE(registry.follow(0, new_leader));

  // Promotion: the promoter announces with a current epoch.
  ASSERT_TRUE(registry.lead(0, new_leader, 7201, registry.epoch()));
  EXPECT_EQ(registry.snapshot().shards[0].leader, new_leader);
  // The promoted node is no longer listed as a follower.
  EXPECT_TRUE(registry.snapshot().shards[0].followers.empty());

  // The resurrected old leader re-announces with its pre-failover view.
  std::string why;
  EXPECT_FALSE(registry.lead(0, old_leader, 7200, stale, &why));
  EXPECT_NE(why.find("fenced"), std::string::npos) << why;
  EXPECT_EQ(registry.snapshot().shards[0].leader, new_leader);
  EXPECT_EQ(metrics.counter("cluster.registry.fenced").value(), 1u);

  // Out-of-range shard and the wire-level error path.
  EXPECT_FALSE(registry.lead(9, old_leader, 0, registry.epoch(), &why));
  EXPECT_EQ(registry.handle("lead 0 127.0.0.1:7100 7200 " +
                            std::to_string(stale))
                .rfind("err fenced", 0),
            0u);
  EXPECT_EQ(registry.handle("bogus").rfind("err", 0), 0u);
}

TEST(ClusterRegistry, ClientsObserveTheEpochBumpOverTheWire) {
  obs::Registry metrics;
  cluster::Registry registry(2, &metrics);
  auto server = cluster::RegistryServer::start(registry, 0);
  ASSERT_TRUE(server);
  const repl::Endpoint registry_ep{"127.0.0.1", server->port()};

  cluster::RegistryClient admin(registry_ep);
  cluster::RegistryClient observer(registry_ep);
  std::string err;
  ASSERT_TRUE(admin.fetch(&err)) << err;
  ASSERT_TRUE(observer.fetch(&err)) << err;
  EXPECT_EQ(observer.epoch(), 0u);

  const repl::Endpoint leader0{"127.0.0.1", 7100};
  const repl::Endpoint follower0{"127.0.0.1", 7101};
  ASSERT_TRUE(admin.lead(0, leader0, 7200, admin.epoch(), &err)) << err;
  ASSERT_TRUE(admin.follow(0, follower0, &err)) << err;
  ASSERT_TRUE(admin.lead(1, {"127.0.0.1", 7110}, 7210, 0, &err)) << err;
  ASSERT_TRUE(admin.health(leader0, "down", &err)) << err;

  // The observer's cached epoch is stale; refresh() notices and refetches.
  EXPECT_EQ(observer.epoch(), 0u);
  ASSERT_TRUE(observer.refresh(&err)) << err;
  EXPECT_EQ(observer.epoch(), 4u);
  const auto shards = observer.router_shards();
  ASSERT_EQ(shards.size(), 2u);
  EXPECT_EQ(shards[0].primary, leader0);
  ASSERT_EQ(shards[0].followers.size(), 1u);
  EXPECT_EQ(shards[0].followers[0], follower0);
  EXPECT_EQ(observer.map().shards[0].health, "down");

  // A refresh with nothing new is one epoch poll, no refetch, still true.
  ASSERT_TRUE(observer.refresh(&err)) << err;
  EXPECT_EQ(observer.epoch(), 4u);

  // Failover announced with the observer's (current) epoch; a second
  // announcement reusing the now-stale epoch is fenced over the wire.
  const std::uint64_t pre_failover = observer.epoch();
  ASSERT_TRUE(admin.lead(0, follower0, 7201, pre_failover, &err)) << err;
  EXPECT_FALSE(admin.lead(0, leader0, 7200, pre_failover, &err));
  EXPECT_NE(err.find("fenced"), std::string::npos) << err;

  ASSERT_TRUE(observer.refresh(&err)) << err;
  EXPECT_EQ(observer.router_shards()[0].primary, follower0);

  server->stop();
}

// --- scatter-gather -------------------------------------------------------

TEST(ClusterScatter, GathersAllShardsAndFlagsPartialResults) {
  // Shard 0: a live service. Shard 1: a dead port from the start.
  svc::TuningService::Options opts;
  opts.workers = 1;
  opts.shard_index = 0;
  opts.shard_count = 2;
  svc::TuningService service(opts);
  net::Server server(service, {});

  obs::Registry metrics;
  repl::Router router(
      {{{"127.0.0.1", server.port()}, {}}, {{"127.0.0.1", 1}, {}}},
      &metrics);
  cluster::ScatterOptions sopts;
  sopts.timeout_ms = 2000;
  sopts.registry = &metrics;
  cluster::ScatterClient scatter(router, sopts);

  const cluster::ScatterResult r = scatter.query("ping");
  EXPECT_TRUE(r.partial);
  EXPECT_FALSE(r.complete());
  EXPECT_EQ(r.responded, 1u);
  ASSERT_EQ(r.replies.size(), 2u);
  EXPECT_TRUE(r.replies[0].ok);
  EXPECT_EQ(r.replies[0].line.rfind("ok pong shard=0/2", 0), 0u);
  EXPECT_FALSE(r.replies[1].ok);
  EXPECT_FALSE(r.replies[1].error.empty());
  // Scatter is a passive health signal: the dead endpoint is marked.
  EXPECT_TRUE(router.is_down({"127.0.0.1", 1}));
  EXPECT_EQ(metrics.counter("cluster.scatter.partial").value(), 1u);
  EXPECT_GE(metrics.counter("cluster.scatter.shard_errors").value(), 1u);

  server.shutdown();
}

TEST(ClusterScatter, MergesMetricsAcrossRespondingShards) {
  cluster::ScatterResult result;
  result.replies.resize(3);
  result.replies[0].ok = true;
  result.replies[0].line = "ok metrics requests=10 warm_hits=4 p50=1.5";
  result.replies[1].ok = true;
  result.replies[1].line = "ok metrics requests=32 warm_hits=6 p50=2.5";
  result.replies[2].ok = false;  // dark shard contributes nothing
  result.responded = 2;
  result.partial = true;

  const std::string merged = cluster::ScatterClient::merge_metrics(result);
  EXPECT_NE(merged.find("requests=42"), std::string::npos) << merged;
  EXPECT_NE(merged.find("warm_hits=10"), std::string::npos) << merged;
  EXPECT_NE(merged.find("p50=4"), std::string::npos) << merged;
  EXPECT_NE(merged.find("partial=1 responded=2/3"), std::string::npos)
      << merged;
}

}  // namespace
