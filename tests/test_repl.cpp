// ilc::repl tests: wire codec framing, cold-follower bootstrap,
// frame-granular resume, compaction mid-stream, and the fault suite the
// subsystem exists for — torn ships, follower crashes mid-apply,
// stale-generation snapshots, split-brain rejection, leader restarts —
// every one deterministic via support::failpoint or direct byte surgery,
// ending in the byte-identical zero-divergence gate. Plus the serving
// layer: Router shard math and failover, wrong-shard refusal, and a
// read-only follower service answering replicated warm hits.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "ir/fingerprint.hpp"
#include "kbstore/log_format.hpp"
#include "kbstore/store.hpp"
#include "repl/applier.hpp"
#include "repl/router.hpp"
#include "repl/ship.hpp"
#include "repl/transport.hpp"
#include "repl/wire.hpp"
#include "support/failpoint.hpp"
#include "svc/cache.hpp"
#include "svc/service.hpp"
#include "workloads/workloads.hpp"

namespace {

namespace fs = std::filesystem;

using namespace ilc;

kb::ExperimentRecord sample(const std::string& program, std::uint64_t cycles,
                            const std::string& kind = "sequence") {
  kb::ExperimentRecord r;
  r.program = program;
  r.machine = "amd-like";
  r.kind = kind;
  r.config = "constprop,dce,licm";
  r.cycles = cycles;
  r.code_size = 100;
  r.static_features = {1.5, -2.25};
  return r;
}

struct TempDir {
  explicit TempDir(const char* name) : path(name) { fs::remove_all(path); }
  ~TempDir() { fs::remove_all(path); }
  std::string path;
};

kbstore::Options every_append() {
  kbstore::Options opts;
  opts.flush = kbstore::Options::Flush::EveryAppend;
  opts.background_compaction = false;
  return opts;
}

/// Deliver every complete message in `bytes` to the applier. Returns
/// false (and the reason) as soon as one is refused.
bool deliver(repl::Applier& a, const std::string& bytes,
             std::string* why = nullptr) {
  repl::MsgReader reader;
  reader.feed(bytes);
  repl::Msg m;
  while (reader.next(m) == repl::MsgReader::Status::Ok)
    if (!a.apply(m, why)) return false;
  return true;
}

/// One full ship session over an in-process "pipe": handshake at the
/// follower's position, then poll until the follower's durable position
/// equals the leader's on-disk position. False on rejection or stall.
bool pipe_replicate(const std::string& leader_dir, repl::Applier& a,
                    std::string* why = nullptr) {
  repl::ShipSource src(leader_dir);
  std::string out;
  if (!src.handshake(a.hello(), out, why)) {
    deliver(a, out);  // the Reject reaches the follower too
    return false;
  }
  const auto target = src.position();
  if (!target) return false;
  for (int i = 0; i < 1000; ++i) {
    out.clear();
    if (!src.poll(out)) return false;
    if (!deliver(a, out, why)) return false;
    const kbstore::WalPosition pos = a.position();
    if (pos.generation == target->generation && pos.seq == target->seq &&
        pos.chain_crc == target->chain_crc)
      return true;
  }
  return false;
}

/// TCP catch-up gate: follower position == the leader's on-disk position.
bool wait_position(const std::string& leader_dir, const repl::Applier& a,
                   int timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    const auto target = repl::ShipSource(leader_dir).position();
    if (target) {
      const kbstore::WalPosition pos = a.position();
      if (pos.generation == target->generation && pos.seq == target->seq &&
          pos.chain_crc == target->chain_crc)
        return true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return false;
}

// --- wire ----------------------------------------------------------------

TEST(ReplWire, RoundTripsEveryMessageType) {
  kbstore::WalPosition pos{7, 42, 0xdeadbeef};
  const repl::Msg msgs[] = {
      repl::Msg::hello(pos),
      repl::Msg::snapshot(9, std::string("snapbytes\0with nul", 18)),
      repl::Msg::frames(7, 42, "rawframes"),
      repl::Msg::heartbeat(7, 99),
      repl::Msg::reject("split-brain: because"),
  };
  std::string stream;
  for (const auto& m : msgs) repl::encode_msg(stream, m);

  repl::MsgReader reader;
  reader.feed(stream);
  repl::Msg m;
  ASSERT_EQ(reader.next(m), repl::MsgReader::Status::Ok);
  EXPECT_EQ(m.type, repl::MsgType::Hello);
  EXPECT_EQ(m.a, 7u);
  EXPECT_EQ(m.b, 42u);
  EXPECT_EQ(m.hello_chain(), 0xdeadbeefu);
  ASSERT_EQ(reader.next(m), repl::MsgReader::Status::Ok);
  EXPECT_EQ(m.type, repl::MsgType::Snapshot);
  EXPECT_EQ(m.a, 9u);
  EXPECT_EQ(m.payload.size(), 18u);
  ASSERT_EQ(reader.next(m), repl::MsgReader::Status::Ok);
  EXPECT_EQ(m.type, repl::MsgType::Frames);
  EXPECT_EQ(m.payload, "rawframes");
  ASSERT_EQ(reader.next(m), repl::MsgReader::Status::Ok);
  EXPECT_EQ(m.type, repl::MsgType::Heartbeat);
  EXPECT_EQ(m.b, 99u);
  ASSERT_EQ(reader.next(m), repl::MsgReader::Status::Ok);
  EXPECT_EQ(m.type, repl::MsgType::Reject);
  EXPECT_EQ(m.payload, "split-brain: because");
  EXPECT_EQ(reader.next(m), repl::MsgReader::Status::NeedMore);
}

TEST(ReplWire, DecodesAcrossArbitraryChunkBoundaries) {
  std::string stream;
  for (int i = 0; i < 20; ++i)
    repl::encode_msg(stream, repl::Msg::frames(1, i, std::string(i * 7, 'x')));
  repl::MsgReader reader;
  int decoded = 0;
  repl::Msg m;
  for (std::size_t i = 0; i < stream.size(); ++i) {
    reader.feed(std::string_view(stream).substr(i, 1));  // one byte at a time
    while (reader.next(m) == repl::MsgReader::Status::Ok) {
      EXPECT_EQ(m.b, static_cast<std::uint64_t>(decoded));
      ++decoded;
    }
  }
  EXPECT_EQ(decoded, 20);
  EXPECT_EQ(reader.buffered(), 0u);
}

TEST(ReplWire, CorruptStreamPoisonsUntilReset) {
  std::string stream;
  repl::encode_msg(stream, repl::Msg::heartbeat(1, 2));
  stream[9] ^= 0x40;  // flip a body bit: CRC must catch it
  repl::MsgReader reader;
  reader.feed(stream);
  repl::Msg m;
  EXPECT_EQ(reader.next(m), repl::MsgReader::Status::Corrupt);
  EXPECT_TRUE(reader.corrupt());
  EXPECT_EQ(reader.next(m), repl::MsgReader::Status::Corrupt);

  reader.reset();
  std::string good;
  repl::encode_msg(good, repl::Msg::heartbeat(3, 4));
  reader.feed(good);
  ASSERT_EQ(reader.next(m), repl::MsgReader::Status::Ok);
  EXPECT_EQ(m.a, 3u);
}

// --- ship + apply over a pipe --------------------------------------------

TEST(ReplShip, ColdFollowerBootstrapsByteIdentical) {
  TempDir leader("repl_cold_leader");
  TempDir follower("repl_cold_follower");
  auto store = kbstore::Store::open(leader.path, every_append());
  ASSERT_TRUE(store);
  for (int i = 0; i < 10; ++i) store->append(sample("p" + std::to_string(i), 100 + i));

  auto a = repl::Applier::open(follower.path);
  ASSERT_TRUE(a);
  ASSERT_TRUE(pipe_replicate(leader.path, *a));
  EXPECT_EQ(repl::divergence(leader.path, follower.path), std::nullopt);
  EXPECT_EQ(a->store().size(), 10u);
  const auto rec = a->find("p3", "amd-like", "sequence");
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->cycles, 103u);
}

TEST(ReplShip, FollowerResumesFrameGranular) {
  TempDir leader("repl_resume_leader");
  TempDir follower("repl_resume_follower");
  auto store = kbstore::Store::open(leader.path, every_append());
  ASSERT_TRUE(store);
  store->append(sample("a", 1));
  store->append(sample("b", 2));

  auto a = repl::Applier::open(follower.path);
  ASSERT_TRUE(a);
  ASSERT_TRUE(pipe_replicate(leader.path, *a));
  EXPECT_EQ(a->position().seq, 2u);

  store->append(sample("c", 3));
  store->upsert(sample("a", 4));
  store->erase("b", "amd-like", "sequence");

  // A fresh session (leader restart): the Hello carries seq=2, so only
  // the three new frames ship — verify by watching the Frames start_seq.
  repl::ShipSource src(leader.path);
  std::string out;
  ASSERT_TRUE(src.handshake(a->hello(), out, nullptr));
  ASSERT_TRUE(src.poll(out));
  repl::MsgReader reader;
  reader.feed(out);
  repl::Msg m;
  ASSERT_EQ(reader.next(m), repl::MsgReader::Status::Ok);
  ASSERT_EQ(m.type, repl::MsgType::Frames);
  EXPECT_EQ(m.b, 2u);  // resumes exactly after the follower's frames
  ASSERT_TRUE(a->apply(m));
  EXPECT_EQ(repl::divergence(leader.path, follower.path), std::nullopt);
  EXPECT_FALSE(a->find("b", "amd-like", "sequence").has_value());
  EXPECT_EQ(a->find("a", "amd-like", "sequence")->cycles, 4u);
}

TEST(ReplShip, CaughtUpSessionSendsOnlyHeartbeats) {
  TempDir leader("repl_hb_leader");
  TempDir follower("repl_hb_follower");
  auto store = kbstore::Store::open(leader.path, every_append());
  ASSERT_TRUE(store);
  store->append(sample("a", 1));
  auto a = repl::Applier::open(follower.path);
  ASSERT_TRUE(a);
  ASSERT_TRUE(pipe_replicate(leader.path, *a));

  repl::ShipSource src(leader.path);
  std::string out;
  ASSERT_TRUE(src.handshake(a->hello(), out, nullptr));
  EXPECT_TRUE(out.empty());
  ASSERT_TRUE(src.poll(out));
  repl::MsgReader reader;
  reader.feed(out);
  repl::Msg m;
  ASSERT_EQ(reader.next(m), repl::MsgReader::Status::Ok);
  EXPECT_EQ(m.type, repl::MsgType::Heartbeat);
  EXPECT_EQ(m.b, 1u);
  EXPECT_EQ(reader.next(m), repl::MsgReader::Status::NeedMore);
  ASSERT_TRUE(a->apply(m));
  EXPECT_EQ(a->lag(), 0u);
}

TEST(ReplShip, SnapshotBootstrapAfterLeaderCompaction) {
  TempDir leader("repl_snap_leader");
  TempDir follower("repl_snap_follower");
  auto store = kbstore::Store::open(leader.path, every_append());
  ASSERT_TRUE(store);
  for (int i = 0; i < 8; ++i) store->upsert(sample("p", 50 - i));
  ASSERT_TRUE(store->compact());  // snapshot generation 1, WAL generation 2
  store->append(sample("post", 7));

  auto a = repl::Applier::open(follower.path);
  ASSERT_TRUE(a);
  ASSERT_TRUE(pipe_replicate(leader.path, *a));
  EXPECT_EQ(repl::divergence(leader.path, follower.path), std::nullopt);
  EXPECT_EQ(a->position().generation, 2u);
  EXPECT_EQ(a->store().size(), 2u);  // compacted "p" + "post"
  EXPECT_EQ(a->find("p", "amd-like", "sequence")->cycles, 43u);
}

TEST(ReplShip, CompactionMidStreamReshipsSnapshot) {
  TempDir leader("repl_midsnap_leader");
  TempDir follower("repl_midsnap_follower");
  auto store = kbstore::Store::open(leader.path, every_append());
  ASSERT_TRUE(store);
  for (int i = 0; i < 4; ++i) store->append(sample("p" + std::to_string(i), i));

  auto a = repl::Applier::open(follower.path);
  ASSERT_TRUE(a);
  repl::ShipSource src(leader.path);
  std::string out;
  ASSERT_TRUE(src.handshake(a->hello(), out, nullptr));
  ASSERT_TRUE(src.poll(out));
  ASSERT_TRUE(deliver(*a, out));
  EXPECT_EQ(a->position().generation, 1u);
  EXPECT_EQ(a->position().seq, 4u);

  // The leader compacts *while this session stays open*: the next poll
  // must notice the generation change and ship the snapshot.
  ASSERT_TRUE(store->compact());
  store->append(sample("after", 9));
  const std::uint64_t snaps_before = a->store().stats().compactions;
  for (int i = 0; i < 10; ++i) {
    out.clear();
    ASSERT_TRUE(src.poll(out));
    ASSERT_TRUE(deliver(*a, out));
    if (a->position().generation == 2 && a->position().seq == 1) break;
  }
  EXPECT_EQ(a->position().generation, 2u);
  EXPECT_GT(a->store().stats().compactions, snaps_before);
  EXPECT_EQ(repl::divergence(leader.path, follower.path), std::nullopt);
  EXPECT_EQ(a->find("after", "amd-like", "sequence")->cycles, 9u);
}

// --- fault suite ---------------------------------------------------------

TEST(ReplFaults, TornShipMidFrameAppliesNothingAndResumes) {
  TempDir leader("repl_torn_leader");
  TempDir follower("repl_torn_follower");
  auto store = kbstore::Store::open(leader.path, every_append());
  ASSERT_TRUE(store);
  for (int i = 0; i < 6; ++i) store->append(sample("p" + std::to_string(i), i));

  auto a = repl::Applier::open(follower.path);
  ASSERT_TRUE(a);
  repl::ShipSource src(leader.path);
  std::string out;
  ASSERT_TRUE(src.handshake(a->hello(), out, nullptr));
  ASSERT_TRUE(src.poll(out));

  // The connection dies mid-message: the follower sees only half the
  // bytes. No partial frame may reach its store.
  repl::MsgReader reader;
  reader.feed(std::string_view(out).substr(0, out.size() / 2));
  repl::Msg m;
  EXPECT_EQ(reader.next(m), repl::MsgReader::Status::NeedMore);
  EXPECT_EQ(a->position().seq, 0u);

  // Reconnect: buffered tail dropped, fresh handshake, full resume.
  reader.reset();
  ASSERT_TRUE(pipe_replicate(leader.path, *a));
  EXPECT_EQ(repl::divergence(leader.path, follower.path), std::nullopt);
}

TEST(ReplFaults, FollowerCrashMidApplyRecoversAndResumes) {
  TempDir leader("repl_crash_leader");
  TempDir follower("repl_crash_follower");
  auto store = kbstore::Store::open(leader.path, every_append());
  ASSERT_TRUE(store);
  for (int i = 0; i < 6; ++i) store->append(sample("p" + std::to_string(i), i));

  // First ship dies mid-apply: the failpoint makes the follower write a
  // torn prefix of the batch and "crash" (its WAL handle is gone).
  support::Failpoints::instance().configure("kbstore.follower_torn=error*1");
  auto a = repl::Applier::open(follower.path);
  ASSERT_TRUE(a);
  std::string why;
  EXPECT_FALSE(pipe_replicate(leader.path, *a, &why));
  EXPECT_NE(why.find("append failed"), std::string::npos);
  support::Failpoints::instance().unset_all();
  a.reset();  // the crashed process exits

  // Restart: recovery truncates the torn tail, the Hello resumes from
  // the surviving prefix, and the ship converges to byte-identical.
  kbstore::RecoveryInfo info;
  a = repl::Applier::open(follower.path, {}, &info);
  ASSERT_TRUE(a);
  EXPECT_TRUE(info.torn_tail);
  EXPECT_LT(a->position().seq, 6u);
  ASSERT_TRUE(pipe_replicate(leader.path, *a));
  EXPECT_EQ(a->position().seq, 6u);
  EXPECT_EQ(repl::divergence(leader.path, follower.path), std::nullopt);
}

TEST(ReplFaults, StaleGenerationSnapshotRejected) {
  TempDir follower("repl_stale_follower");
  auto a = repl::Applier::open(follower.path);
  ASSERT_TRUE(a);
  ASSERT_TRUE(a->apply(repl::Msg::snapshot(3, "")));  // legit: move to gen 3
  EXPECT_EQ(a->position().generation, 3u);

  std::string why;
  EXPECT_FALSE(a->apply(repl::Msg::snapshot(2, ""), &why));  // behind: refuse
  EXPECT_NE(why.find("stale-generation"), std::string::npos);
  EXPECT_FALSE(a->apply(repl::Msg::snapshot(3, ""), &why));  // equal: a rewind
  EXPECT_EQ(a->position().generation, 3u);
  EXPECT_FALSE(a->rejected());  // refusal is not split-brain: resumable
}

TEST(ReplFaults, SplitBrainFollowerAheadRejected) {
  TempDir leader("repl_sb1_leader");
  TempDir follower("repl_sb1_follower");
  auto store = kbstore::Store::open(leader.path, every_append());
  ASSERT_TRUE(store);
  store->append(sample("a", 1));

  auto a = repl::Applier::open(follower.path);
  ASSERT_TRUE(a);
  ASSERT_TRUE(a->apply(repl::Msg::snapshot(5, "")));  // replicated elsewhere

  std::string why;
  EXPECT_FALSE(pipe_replicate(leader.path, *a, nullptr));
  EXPECT_TRUE(a->rejected(&why));
  EXPECT_NE(why.find("split-brain"), std::string::npos);
  // Split-brain is final: even a valid message is refused now.
  EXPECT_FALSE(a->apply(repl::Msg::heartbeat(1, 1)));
}

TEST(ReplFaults, SplitBrainDivergedHistoryRejected) {
  TempDir leader_a("repl_sb2_a");
  TempDir leader_b("repl_sb2_b");
  TempDir follower("repl_sb2_follower");
  auto sa = kbstore::Store::open(leader_a.path, every_append());
  auto sb = kbstore::Store::open(leader_b.path, every_append());
  ASSERT_TRUE(sa && sb);
  sa->append(sample("from-a", 1));
  sb->append(sample("from-b", 2));  // same generation, same seq, other bytes

  auto a = repl::Applier::open(follower.path);
  ASSERT_TRUE(a);
  ASSERT_TRUE(pipe_replicate(leader_b.path, *a));

  // The follower replicated B; pointing it at A must be refused, not
  // silently rewritten — the chain CRC catches the divergence.
  std::string why;
  EXPECT_FALSE(pipe_replicate(leader_a.path, *a, nullptr));
  EXPECT_TRUE(a->rejected(&why));
  EXPECT_NE(why.find("diverges"), std::string::npos);
}

TEST(ReplFaults, FrameGapAndRewindRefused) {
  TempDir leader("repl_gap_leader");
  TempDir follower("repl_gap_follower");
  auto store = kbstore::Store::open(leader.path, every_append());
  ASSERT_TRUE(store);
  store->append(sample("a", 1));
  store->append(sample("b", 2));

  auto a = repl::Applier::open(follower.path);
  ASSERT_TRUE(a);
  repl::ShipSource src(leader.path);
  std::string out;
  ASSERT_TRUE(src.handshake(a->hello(), out, nullptr));
  ASSERT_TRUE(src.poll(out));
  repl::MsgReader reader;
  reader.feed(out);
  repl::Msg frames;
  ASSERT_EQ(reader.next(frames), repl::MsgReader::Status::Ok);
  ASSERT_EQ(frames.type, repl::MsgType::Frames);

  std::string why;
  repl::Msg gap = frames;
  gap.b = 5;  // claims to start past the follower's position
  EXPECT_FALSE(a->apply(gap, &why));
  EXPECT_NE(why.find("gap"), std::string::npos);

  ASSERT_TRUE(a->apply(frames));  // the real batch is fine
  EXPECT_FALSE(a->apply(frames, &why));  // replaying it is a rewind
  EXPECT_NE(why.find("rewind"), std::string::npos);
  EXPECT_EQ(a->position().seq, 2u);
}

// --- TCP transport -------------------------------------------------------

TEST(ReplTcp, TwoFollowersConvergeAndSurviveLeaderRestart) {
  TempDir leader("repl_tcp_leader");
  TempDir f1("repl_tcp_f1");
  TempDir f2("repl_tcp_f2");
  auto store = kbstore::Store::open(leader.path, every_append());
  ASSERT_TRUE(store);
  for (int i = 0; i < 8; ++i) store->append(sample("p" + std::to_string(i), i));

  auto ship = repl::ShipServer::start(leader.path, 0);
  ASSERT_TRUE(ship);
  const std::uint16_t port = ship->port();

  auto a1 = repl::Applier::open(f1.path);
  auto a2 = repl::Applier::open(f2.path);
  ASSERT_TRUE(a1 && a2);
  repl::ShipClientOptions copts;
  copts.reconnect_ms = 20;
  copts.io_timeout_ms = 50;
  auto c1 = repl::ShipClient::start(*a1, port, copts);
  auto c2 = repl::ShipClient::start(*a2, port, copts);
  ASSERT_TRUE(wait_position(leader.path, *a1, 15000));
  ASSERT_TRUE(wait_position(leader.path, *a2, 15000));
  EXPECT_EQ(repl::divergence(leader.path, f1.path), std::nullopt);
  EXPECT_EQ(repl::divergence(leader.path, f2.path), std::nullopt);

  // Leader restart: the ship endpoint disappears, the store keeps
  // writing, a new server comes up on the same port, clients reconnect
  // and resume from their durable positions.
  ship.reset();
  for (int i = 0; i < 4; ++i) store->append(sample("post" + std::to_string(i), i));
  ship = repl::ShipServer::start(leader.path, port);
  ASSERT_TRUE(ship);
  ASSERT_TRUE(wait_position(leader.path, *a1, 15000));
  ASSERT_TRUE(wait_position(leader.path, *a2, 15000));
  EXPECT_GE(c1->connects(), 2u);
  EXPECT_GE(c2->connects(), 2u);
  EXPECT_EQ(repl::divergence(leader.path, f1.path), std::nullopt);
  EXPECT_EQ(repl::divergence(leader.path, f2.path), std::nullopt);
  EXPECT_FALSE(c1->stopped());
  EXPECT_FALSE(c2->stopped());
}

TEST(ReplTcp, TornTcpShipIsReconnectedAndConverges) {
  TempDir leader("repl_tcptorn_leader");
  TempDir follower("repl_tcptorn_follower");
  auto store = kbstore::Store::open(leader.path, every_append());
  ASSERT_TRUE(store);
  for (int i = 0; i < 6; ++i) store->append(sample("p" + std::to_string(i), i));

  // The first shipped batch is cut mid-message and the connection
  // dropped (the repl.ship failpoint): the follower must drop the torn
  // tail, reconnect, and still converge byte-identically.
  support::Failpoints::instance().configure("repl.ship=error*1");
  auto ship = repl::ShipServer::start(leader.path, 0);
  ASSERT_TRUE(ship);
  auto a = repl::Applier::open(follower.path);
  ASSERT_TRUE(a);
  repl::ShipClientOptions copts;
  copts.reconnect_ms = 20;
  copts.io_timeout_ms = 50;
  auto c = repl::ShipClient::start(*a, ship->port(), copts);
  ASSERT_TRUE(wait_position(leader.path, *a, 15000));
  EXPECT_EQ(repl::divergence(leader.path, follower.path), std::nullopt);
  EXPECT_GE(c->connects(), 2u);
  support::Failpoints::instance().unset_all();
}

// --- router --------------------------------------------------------------

TEST(ReplRouter, RoutesOwnerWithReadOnlyFallback) {
  repl::Router router({
      {{"127.0.0.1", 9000}, {{"127.0.0.1", 9001}}},
      {{"127.0.0.1", 9010}, {{"127.0.0.1", 9011}, {"127.0.0.1", 9012}}},
  });
  EXPECT_EQ(repl::owner_of(7, 2), 1u);
  EXPECT_EQ(repl::owner_of(8, 2), 0u);

  auto r = router.route(8);  // shard 0, healthy primary
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->shard, 0u);
  EXPECT_EQ(r->endpoint.port, 9000);
  EXPECT_FALSE(r->read_only);

  router.set_down({"127.0.0.1", 9010});
  r = router.route(7);  // shard 1: primary down -> first follower
  ASSERT_TRUE(r.has_value());
  EXPECT_TRUE(r->read_only);
  EXPECT_EQ(r->endpoint.port, 9011);

  router.set_down({"127.0.0.1", 9011});
  r = router.route(7);  // next follower
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->endpoint.port, 9012);

  router.set_down({"127.0.0.1", 9012});
  EXPECT_FALSE(router.route(7).has_value());  // whole shard dark

  router.set_up({"127.0.0.1", 9010});
  r = router.route(7);  // primary recovered
  ASSERT_TRUE(r.has_value());
  EXPECT_FALSE(r->read_only);
  EXPECT_EQ(r->endpoint.port, 9010);
}

// --- sharded / follower serving ------------------------------------------

TEST(ReplServing, WrongShardRefusedBeforeTouchingTheKb) {
  const wl::Workload w = wl::make_workload("fir");
  const std::uint64_t fp = ir::fingerprint(w.module);

  svc::TuningService::Options opts;
  opts.workers = 1;
  opts.shard_count = 2;
  opts.shard_index = static_cast<std::size_t>((fp % 2) ^ 1);  // not ours
  svc::TuningService svc(opts);

  svc::TuningRequest req;
  req.program = "fir";
  req.budget = 1;
  const svc::TuningResponse r = svc.tune(req);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("wrong shard: owner=" + std::to_string(fp % 2)),
            std::string::npos);
  EXPECT_EQ(r.simulations, 0u);
  EXPECT_EQ(svc.kb_size(), 0u);
}

TEST(ReplServing, FollowerServiceServesReplicatedHitsReadOnly) {
  TempDir leader("repl_serve_leader");
  TempDir follower("repl_serve_follower");

  svc::TuningRequest req;
  req.program = "fir";
  req.budget = 2;
  {
    svc::TuningService::Options lopts;
    lopts.workers = 1;
    lopts.kb_path = leader.path;
    svc::TuningService leader_svc(lopts);
    const svc::TuningResponse r = leader_svc.tune(req);
    ASSERT_TRUE(r.ok);
    ASSERT_TRUE(leader_svc.save());
  }  // leader service closed: its store directory is at rest

  auto a = repl::Applier::open(follower.path);
  ASSERT_TRUE(a);
  ASSERT_TRUE(pipe_replicate(leader.path, *a));

  svc::TuningService::Options fopts;
  fopts.workers = 1;
  fopts.read_only = true;
  fopts.follower_lookup = [&a](const std::string& key,
                               const std::string& machine) {
    return svc::ResultCache::lookup_store(a->store(), key, machine);
  };
  svc::TuningService follower_svc(fopts);

  const svc::TuningResponse hit = follower_svc.tune(req);
  EXPECT_TRUE(hit.ok);
  EXPECT_EQ(hit.source, svc::Source::Follower);
  EXPECT_EQ(hit.simulations, 0u);
  EXPECT_GT(hit.best_metric, 0u);

  svc::TuningRequest miss = req;
  miss.program = "crc32";  // never tuned on the leader
  const svc::TuningResponse m = follower_svc.tune(miss);
  EXPECT_FALSE(m.ok);
  EXPECT_NE(m.error.find("read-only follower"), std::string::npos);
  EXPECT_EQ(m.simulations, 0u);
}

// --- router edge cases ----------------------------------------------------

TEST(ReplRouter, AllEndpointsDownIsUnroutableAndCounted) {
  obs::Registry metrics;
  const repl::Endpoint primary{"127.0.0.1", 9300};
  const repl::Endpoint follower{"127.0.0.1", 9301};
  repl::Router router({{primary, {follower}}}, &metrics);

  router.set_down(primary);
  router.set_down(follower);
  router.set_down(follower);  // already down: not a transition
  EXPECT_FALSE(router.route(0).has_value());
  EXPECT_FALSE(router.route_shard(0).has_value());
  EXPECT_EQ(metrics.counter("repl.router.unroutable").value(), 2u);
  EXPECT_EQ(metrics.counter("repl.router.mark_down").value(), 2u);

  // One endpoint back: routable again (read-only: it is the follower).
  router.set_up(follower);
  const auto r = router.route_shard(0);
  ASSERT_TRUE(r.has_value());
  EXPECT_TRUE(r->read_only);
  EXPECT_EQ(metrics.counter("repl.router.mark_up").value(), 1u);
  EXPECT_EQ(metrics.counter("repl.router.fallback_serves").value(), 1u);

  // Stale-map feedback from services is counted for operators.
  router.note_wrong_shard();
  EXPECT_EQ(metrics.counter("repl.router.wrong_shard").value(), 1u);
}

TEST(ReplRouter, SingleShardOwnsEveryFingerprintAndOutOfRangeIsRefused) {
  obs::Registry metrics;
  repl::Router router({{{"127.0.0.1", 9400}, {}}}, &metrics);
  for (const std::uint64_t fp : {0ull, 1ull, 0xffffffffffffffffull}) {
    const auto r = router.route(fp);
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->shard, 0u);
    EXPECT_EQ(r->endpoint.port, 9400);
  }
  // A shard index beyond the map (stale client) is unroutable, not UB.
  EXPECT_FALSE(router.route_shard(7).has_value());
  EXPECT_EQ(metrics.counter("repl.router.unroutable").value(), 1u);
}

TEST(ReplRouter, PromoteRewiresTheShardTable) {
  const repl::Endpoint primary{"127.0.0.1", 9500};
  const repl::Endpoint f1{"127.0.0.1", 9501};
  const repl::Endpoint f2{"127.0.0.1", 9502};
  repl::Router router({{primary, {f1, f2}}});

  EXPECT_FALSE(router.promote(3, f1));       // no such shard
  EXPECT_FALSE(router.promote(0, primary));  // not a follower
  ASSERT_TRUE(router.promote(0, f1));

  const repl::Router::Shard shard = router.shard(0);
  EXPECT_EQ(shard.primary, f1);
  ASSERT_EQ(shard.followers.size(), 2u);
  EXPECT_EQ(shard.followers[0], f2);
  EXPECT_EQ(shard.followers[1], primary);  // demoted to the back, down
  EXPECT_TRUE(router.is_down(primary));

  const auto r = router.route_shard(0);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->endpoint, f1);
  EXPECT_FALSE(r->read_only);
}

TEST(ReplRouter, FallbackMidCatchUpServesOnlyTheReplicatedPrefix) {
  TempDir leader("repl_midcatchup_leader");
  TempDir follower("repl_midcatchup_follower");

  svc::TuningRequest early;
  early.program = "fir";
  early.budget = 2;
  svc::TuningRequest late;
  late.program = "crc32";
  late.budget = 2;

  svc::TuningService::Options lopts;
  lopts.workers = 1;
  lopts.kb_path = leader.path;
  {
    svc::TuningService leader_svc(lopts);
    ASSERT_TRUE(leader_svc.tune(early).ok);
    ASSERT_TRUE(leader_svc.save());
  }

  // Replicate what exists so far, then let the leader advance: the
  // follower is now mid-catch-up, durable but behind.
  auto a = repl::Applier::open(follower.path);
  ASSERT_TRUE(a);
  ASSERT_TRUE(pipe_replicate(leader.path, *a));
  {
    svc::TuningService leader_svc(lopts);  // leader restarts and moves on
    ASSERT_TRUE(leader_svc.tune(late).ok);
    ASSERT_TRUE(leader_svc.save());
  }
  const auto target = repl::ShipSource(leader.path).position();
  ASSERT_TRUE(target.has_value());
  const kbstore::WalPosition behind = a->position();
  EXPECT_TRUE(behind.generation != target->generation ||
              behind.seq < target->seq);

  // The primary dies; the router falls back to the lagging follower.
  obs::Registry metrics;
  const repl::Endpoint primary{"127.0.0.1", 9600};
  const repl::Endpoint replica{"127.0.0.1", 9601};
  repl::Router router({{primary, {replica}}}, &metrics);
  router.set_down(primary);
  const auto r = router.route_shard(0);
  ASSERT_TRUE(r.has_value());
  EXPECT_TRUE(r->read_only);
  EXPECT_EQ(r->endpoint, replica);

  // What that fallback can actually serve: the replicated prefix, and
  // nothing the leader committed after the follower fell behind.
  svc::TuningService::Options fopts;
  fopts.workers = 1;
  fopts.read_only = true;
  fopts.follower_lookup = [&a](const std::string& key,
                               const std::string& machine) {
    return svc::ResultCache::lookup_store(a->store(), key, machine);
  };
  svc::TuningService follower_svc(fopts);
  const svc::TuningResponse hit = follower_svc.tune(early);
  EXPECT_TRUE(hit.ok);
  EXPECT_EQ(hit.source, svc::Source::Follower);
  const svc::TuningResponse miss = follower_svc.tune(late);
  EXPECT_FALSE(miss.ok);
  EXPECT_EQ(miss.simulations, 0u);

  // Catch-up completes; the late record becomes servable.
  ASSERT_TRUE(pipe_replicate(leader.path, *a));
  const svc::TuningResponse now = follower_svc.tune(late);
  EXPECT_TRUE(now.ok);
  EXPECT_EQ(now.source, svc::Source::Follower);
}

}  // namespace
