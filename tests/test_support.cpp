// Unit tests for the support substrate: RNG determinism and statistics,
// hashing, thread pool / parallel_for, tables, CSV round-trips, strings.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>

#include "support/assert.hpp"
#include "support/crc32.hpp"
#include "support/csv.hpp"
#include "support/failpoint.hpp"
#include "support/hash.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "support/string_utils.hpp"
#include "support/table.hpp"
#include "support/thread_pool.hpp"

namespace {

using namespace ilc::support;

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Rng, NextBelowIsInRange) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(r.next_below(17), 17u);
}

TEST(Rng, NextBelowCoversAllValues) {
  Rng r(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(r.next_below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, NextInInclusiveBounds) {
  Rng r(3);
  bool lo_seen = false, hi_seen = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = r.next_in(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    lo_seen |= (v == -2);
    hi_seen |= (v == 2);
  }
  EXPECT_TRUE(lo_seen);
  EXPECT_TRUE(hi_seen);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng r(11);
  for (int i = 0; i < 10000; ++i) {
    const double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, WeightedRespectsZeroWeights) {
  Rng r(5);
  std::vector<double> w = {0.0, 1.0, 0.0};
  for (int i = 0; i < 200; ++i) EXPECT_EQ(r.next_weighted(w), 1u);
}

TEST(Rng, WeightedApproximatesDistribution) {
  Rng r(6);
  std::vector<double> w = {1.0, 3.0};
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i)
    if (r.next_weighted(w) == 1) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.75, 0.02);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng r(9);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  auto orig = v;
  r.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(Rng, ForkProducesIndependentStreams) {
  Rng base(1);
  Rng a = base.fork(0);
  Rng b = base.fork(1);
  EXPECT_NE(a.next_u64(), b.next_u64());
}

TEST(Hash, StableAndSensitive) {
  EXPECT_EQ(hash_bytes("abc", 3), hash_bytes("abc", 3));
  EXPECT_NE(hash_bytes("abc", 3), hash_bytes("abd", 3));
  EXPECT_NE(hash_combine(1, 2), hash_combine(2, 1));
}

TEST(Hash, HasherStrIncludesLength) {
  Hasher a, b;
  a.str("ab").str("c");
  b.str("a").str("bc");
  EXPECT_NE(a.digest(), b.digest());
}

TEST(Stats, MeanVarStd) {
  std::vector<double> v = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(mean(v), 2.5);
  EXPECT_DOUBLE_EQ(variance(v), 1.25);
  EXPECT_NEAR(stdev(v), 1.118, 1e-3);
}

TEST(Stats, GeomeanOfPowers) {
  std::vector<double> v = {1, 4};
  EXPECT_DOUBLE_EQ(geomean(v), 2.0);
}

TEST(Stats, PercentileInterpolates) {
  std::vector<double> v = {10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 10);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 40);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 25);
}

TEST(ThreadPool, RunsAllJobs) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) pool.submit([&] { ++count; });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ParallelFor, CoversRangeExactlyOnce) {
  std::vector<std::atomic<int>> hits(500);
  parallel_for(0, 500, [&](std::size_t i) { ++hits[i]; }, 4);
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, PropagatesException) {
  EXPECT_THROW(
      parallel_for(0, 10,
                   [](std::size_t i) {
                     if (i == 5) throw std::runtime_error("boom");
                   },
                   4),
      std::runtime_error);
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  parallel_for(5, 5, [](std::size_t) { FAIL(); }, 4);
}

TEST(ThreadPool, WaitIdleWithNoSubmittedJobsReturnsImmediately) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not deadlock or spin
  pool.wait_idle();  // and must be repeatable
  std::atomic<int> count{0};
  pool.submit([&] { ++count; });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 1);
  pool.wait_idle();  // idempotent after completed work too
}

TEST(ThreadPool, SingleThreadPoolRunsEveryJob) {
  // The hardware_concurrency()==1 configuration: one worker, strictly
  // sequential execution, same results as any other width.
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1u);
  std::vector<int> order;
  for (int i = 0; i < 50; ++i) pool.submit([&order, i] { order.push_back(i); });
  pool.wait_idle();
  ASSERT_EQ(order.size(), 50u);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(order[i], i);  // FIFO, one worker
}

TEST(ParallelFor, SingleThreadDegradesToInlineLoop) {
  // With threads == 1 (the hardware_concurrency()==1 path) iterations run
  // on the calling thread, in order, with no pool spawned.
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::size_t> order;
  parallel_for(3, 9,
               [&](std::size_t i) {
                 EXPECT_EQ(std::this_thread::get_id(), caller);
                 order.push_back(i);
               },
               1);
  EXPECT_EQ(order, (std::vector<std::size_t>{3, 4, 5, 6, 7, 8}));
}

TEST(ParallelFor, SingleThreadPropagatesExceptionInline) {
  int ran = 0;
  EXPECT_THROW(parallel_for(0, 4,
                            [&](std::size_t i) {
                              ++ran;
                              if (i == 1) throw std::runtime_error("inline");
                            },
                            1),
               std::runtime_error);
  EXPECT_EQ(ran, 2);  // inline loop stops at the throwing iteration
}

TEST(ParallelFor, ExceptionDoesNotPoisonLaterIterations) {
  // Concurrent path: the first captured exception is rethrown only after
  // every iteration finished, so all indices are still visited.
  std::vector<std::atomic<int>> hits(64);
  EXPECT_THROW(parallel_for(0, 64,
                            [&](std::size_t i) {
                              ++hits[i];
                              if (i % 7 == 0) throw std::runtime_error("x");
                            },
                            4),
               std::runtime_error);
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Table, RendersAlignedCells) {
  Table t({"name", "value"});
  t.add_row({"x", "1.50"});
  t.add_row({"longer", "20.25"});
  const std::string out = t.render();
  EXPECT_NE(out.find("| name   |"), std::string::npos);
  EXPECT_NE(out.find("1.50"), std::string::npos);
}

TEST(Table, NumFormatters) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(1234567LL), "1,234,567");
  EXPECT_EQ(Table::num(-42LL), "-42");
}

TEST(Table, RowWidthMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), CheckError);
}

TEST(Csv, RoundTripsQuotedCells) {
  CsvWriter w;
  w.row({"a", "b,with comma", "c\"quote"});
  w.row({"1", "2", "3"});
  const auto rows = parse_csv(w.str());
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][1], "b,with comma");
  EXPECT_EQ(rows[0][2], "c\"quote");
  EXPECT_EQ(rows[1][0], "1");
}

TEST(Csv, ParsesEmptyCells) {
  const auto rows = parse_csv("a,,c\n");
  ASSERT_EQ(rows.size(), 1u);
  ASSERT_EQ(rows[0].size(), 3u);
  EXPECT_EQ(rows[0][1], "");
}

TEST(Strings, SplitAndJoin) {
  const auto parts = split("a:b::c", ':');
  EXPECT_EQ(parts, (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(join({"a", "b", "c"}, "-"), "a-b-c");
}

TEST(Strings, SplitWsDropsEmpties) {
  const auto parts = split_ws("  a \t b\nc  ");
  EXPECT_EQ(parts, (std::vector<std::string>{"a", "b", "c"}));
}

TEST(Strings, TrimAndCase) {
  EXPECT_EQ(trim("  hi \n"), "hi");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(to_lower("MiXeD"), "mixed");
  EXPECT_TRUE(starts_with("foobar", "foo"));
  EXPECT_FALSE(starts_with("fo", "foo"));
}

TEST(Crc32, MatchesKnownVectors) {
  // The IEEE 802.3 check value for "123456789".
  EXPECT_EQ(crc32(std::string_view("123456789")), 0xCBF43926u);
  EXPECT_EQ(crc32(std::string_view("")), 0u);
  EXPECT_NE(crc32(std::string_view("a")), crc32(std::string_view("b")));
}

TEST(Crc32, IncrementalChainingEqualsOneShot) {
  const std::string data = "the knowledge base write-ahead log";
  const std::uint32_t whole = crc32(data.data(), data.size());
  for (std::size_t cut = 0; cut <= data.size(); ++cut) {
    const std::uint32_t head = crc32(data.data(), cut);
    EXPECT_EQ(crc32(data.data() + cut, data.size() - cut, head), whole);
  }
}

TEST(Assert, CheckThrowsWithMessage) {
  try {
    ILC_CHECK_MSG(1 == 2, "custom " << 42);
    FAIL();
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("custom 42"), std::string::npos);
  }
}

// Failpoints are disarmed between tests so suites can't leak faults.
class FailpointTest : public ::testing::Test {
 protected:
  void TearDown() override { Failpoints::instance().unset_all(); }
};

TEST_F(FailpointTest, DisarmedSitesAreInert) {
  EXPECT_FALSE(Failpoints::instance().armed());
  EXPECT_FALSE(failpoint("never.armed"));
  EXPECT_EQ(Failpoints::instance().hits("never.armed"), 0u);
}

TEST_F(FailpointTest, ErrorKindReturnsTrueAndCountsHits) {
  ASSERT_TRUE(Failpoints::instance().configure("site.a=error"));
  EXPECT_TRUE(Failpoints::instance().armed());
  EXPECT_TRUE(failpoint("site.a"));
  EXPECT_TRUE(failpoint("site.a"));
  EXPECT_FALSE(failpoint("site.b"));  // other names unaffected
  EXPECT_EQ(Failpoints::instance().hits("site.a"), 2u);
  Failpoints::instance().unset("site.a");
  EXPECT_FALSE(failpoint("site.a"));
}

TEST_F(FailpointTest, ThrowKindThrowsFailpointError) {
  ASSERT_TRUE(Failpoints::instance().configure("site.t=throw:boom"));
  try {
    failpoint("site.t");
    FAIL() << "should have thrown";
  } catch (const FailpointError& e) {
    EXPECT_STREQ(e.what(), "boom");
  }
}

TEST_F(FailpointTest, CountLimitSelfDisarms) {
  ASSERT_TRUE(Failpoints::instance().configure("site.c=error*2"));
  EXPECT_TRUE(failpoint("site.c"));
  EXPECT_TRUE(failpoint("site.c"));
  EXPECT_FALSE(failpoint("site.c"));  // budget spent: disarmed
  EXPECT_FALSE(Failpoints::instance().armed());
  EXPECT_EQ(Failpoints::instance().hits("site.c"), 2u);
}

TEST_F(FailpointTest, ConfigureParsesMultipleClausesAndRejectsGarbage) {
  ASSERT_TRUE(
      Failpoints::instance().configure("a=error;b=delay:1;c=throw*3"));
  EXPECT_TRUE(failpoint("a"));
  EXPECT_FALSE(failpoint("b"));  // delay returns false after sleeping
  EXPECT_THROW(failpoint("c"), FailpointError);

  EXPECT_FALSE(Failpoints::instance().configure("no-equals"));
  EXPECT_FALSE(Failpoints::instance().configure("x=badkind"));
  EXPECT_FALSE(Failpoints::instance().configure("x=delay:notanumber"));
  EXPECT_FALSE(Failpoints::instance().configure("x=error*0"));
}

TEST_F(FailpointTest, BlockParksUntilReleased) {
  ASSERT_TRUE(Failpoints::instance().configure("site.block=block"));
  std::atomic<bool> passed{false};
  std::thread t([&] {
    failpoint("site.block");
    passed.store(true);
  });
  // The worker must arrive at the failpoint and park there.
  while (Failpoints::instance().hits("site.block") == 0)
    std::this_thread::yield();
  EXPECT_FALSE(passed.load());
  Failpoints::instance().unset("site.block");
  t.join();
  EXPECT_TRUE(passed.load());
}

}  // namespace
