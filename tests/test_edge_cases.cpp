// Targeted edge-case coverage across modules: builder record helpers,
// module layout queries, machine-specific simulator behaviour, optimizer
// corner cases, evaluator/pipeline equivalences, and GA constraint repair.
#include <gtest/gtest.h>

#include "ir/builder.hpp"
#include "ir/verifier.hpp"
#include "opt/pass.hpp"
#include "opt/pipelines.hpp"
#include "search/evaluator.hpp"
#include "search/strategies.hpp"
#include "sim/interpreter.hpp"
#include "support/assert.hpp"
#include "workloads/workloads.hpp"

namespace {

using namespace ilc;
using namespace ilc::ir;

// --- builder record helpers ------------------------------------------------

Module record_module(RecordId* rec_out, GlobalId* gid_out) {
  Module m;
  RecordType t;
  t.name = "pair";
  t.fields = {{"next", FieldKind::Ptr}, {"v", FieldKind::I32}};
  const RecordId rec = m.add_record(t);
  Global g;
  g.name = "pairs";
  g.kind = GlobalKind::RecordArray;
  g.record = rec;
  g.count = 5;
  g.field_init.resize(2);
  g.field_init[0] = {{1, 2, 3, 4, -1}, 0};  // linear chain
  g.field_init[1].values = {10, 20, 30, 40, 50};
  const GlobalId gid = m.add_global(g);
  if (rec_out) *rec_out = rec;
  if (gid_out) *gid_out = gid;
  return m;
}

TEST(BuilderRecords, ElemAddrAndFieldAccessAgreeWithLayout) {
  RecordId rec;
  GlobalId gid;
  Module m = record_module(&rec, &gid);
  FunctionBuilder b(m, "main", 0);
  // Sum v over elements 0..4 via computed element addresses.
  Reg sum = b.fresh();
  b.imm_to(sum, 0);
  for (int i = 0; i < 5; ++i) {
    Reg addr = b.record_elem_addr(gid, b.imm(i));
    b.mov_to(sum, b.add(sum, b.load_field(addr, rec, 1)));
  }
  b.ret(sum);
  b.finish();
  ASSERT_EQ(verify(m), "");
  sim::Simulator s(m, sim::amd_like());
  EXPECT_EQ(s.run().ret, 150);
}

TEST(BuilderRecords, ChainWalkSurvivesCompression) {
  RecordId rec;
  GlobalId gid;
  Module m = record_module(&rec, &gid);
  FunctionBuilder b(m, "main", 0);
  Reg node = b.fresh();
  b.mov_to(node, b.global_addr(gid));
  Reg sum = b.fresh();
  b.imm_to(sum, 0);
  Reg n = b.imm(5);
  BlockId head = b.new_block(), body = b.new_block(), exit = b.new_block();
  Reg i = b.fresh();
  b.imm_to(i, 0);
  b.jump(head);
  b.switch_to(head);
  b.br(b.cmp_lt(i, n), body, exit);
  b.switch_to(body);
  b.mov_to(sum, b.add(sum, b.load_field(node, rec, 1)));
  b.mov_to(node, b.load_field(node, rec, 0));
  b.mov_to(i, b.add_i(i, 1));
  b.jump(head);
  b.switch_to(exit);
  b.ret(sum);
  b.finish();

  sim::Simulator before(m, sim::amd_like());
  const auto r1 = before.run();
  EXPECT_EQ(r1.ret, 150);
  ASSERT_TRUE(opt::compress_pointers(m));
  ASSERT_EQ(verify(m), "");
  sim::Simulator after(m, sim::amd_like());
  EXPECT_EQ(after.run().ret, 150);
}

TEST(ModuleQueries, StrideAndBytesTrackPointerWidth) {
  RecordId rec;
  GlobalId gid;
  Module m = record_module(&rec, &gid);
  EXPECT_EQ(m.find_global("pairs"), gid);
  EXPECT_EQ(m.find_global("nope"), kNoGlobal);
  const auto bytes8 = m.global_bytes(gid);
  m.set_ptr_bytes(4);
  const auto bytes4 = m.global_bytes(gid);
  EXPECT_LT(bytes4, bytes8);
  EXPECT_EQ(m.global_stride(gid), m.record_layout(rec).stride);
}

TEST(BuilderErrors, ArgAndFrameBoundsChecked) {
  Module m;
  FunctionBuilder b(m, "f", 1, 8);
  EXPECT_THROW(b.arg(1), support::CheckError);
  EXPECT_THROW(b.frame_addr(8), support::CheckError);  // one past end
  b.ret();
  b.finish();
}

// --- machine-specific simulator behaviour ----------------------------------

TEST(Machines, StaticPredictorPunishesAlternatingBranch) {
  // An alternating (T,N,T,N) data-dependent branch: the gshare machine
  // learns it, the static DSP predictor mispredicts half the time.
  auto build = [] {
    Module m;
    FunctionBuilder b(m, "main", 0);
    Reg acc = b.fresh();
    b.imm_to(acc, 0);
    Reg n = b.imm(512);
    BlockId head = b.new_block(), body = b.new_block(),
            odd = b.new_block(), join = b.new_block(), exit = b.new_block();
    Reg i = b.fresh();
    b.imm_to(i, 0);
    b.jump(head);
    b.switch_to(head);
    b.br(b.cmp_lt(i, n), body, exit);
    b.switch_to(body);
    b.br(b.and_i(i, 1), odd, join);
    b.switch_to(odd);
    b.mov_to(acc, b.add_i(acc, 3));
    b.jump(join);
    b.switch_to(join);
    b.mov_to(i, b.add_i(i, 1));
    b.jump(head);
    b.switch_to(exit);
    b.ret(acc);
    b.finish();
    return m;
  };
  Module m1 = build(), m2 = build();
  sim::Simulator dsp(m1, sim::c6713_like());
  sim::Simulator amd(m2, sim::amd_like());
  const auto r_dsp = dsp.run();
  const auto r_amd = amd.run();
  EXPECT_EQ(r_dsp.ret, r_amd.ret);
  const double dsp_rate = static_cast<double>(r_dsp.counters[sim::BR_MSP]) /
                          static_cast<double>(r_dsp.counters[sim::BR_INS]);
  const double amd_rate = static_cast<double>(r_amd.counters[sim::BR_MSP]) /
                          static_cast<double>(r_amd.counters[sim::BR_INS]);
  EXPECT_GT(dsp_rate, 0.2);
  EXPECT_LT(amd_rate, dsp_rate / 2);
}

TEST(Machines, CallOverheadVisible) {
  auto build = [](int calls) {
    Module m;
    FuncId leaf;
    {
      FunctionBuilder b(m, "leaf", 1);
      b.ret(b.add_i(b.arg(0), 1));
      leaf = b.finish();
    }
    FunctionBuilder b(m, "main", 0);
    Reg acc = b.fresh();
    b.imm_to(acc, 0);
    for (int i = 0; i < calls; ++i) acc = b.call(leaf, {acc});
    b.ret(acc);
    b.finish();
    return m;
  };
  Module few = build(4), many = build(64);
  sim::Simulator s1(few, sim::amd_like());
  sim::Simulator s2(many, sim::amd_like());
  const auto r1 = s1.run();
  const auto r2 = s2.run();
  EXPECT_EQ(r2.ret, 64);
  // 60 extra calls at >= call_overhead + ~5 instructions each.
  EXPECT_GT(r2.cycles, r1.cycles + 60 * sim::amd_like().call_overhead);
}

TEST(Machines, DeepRecursionTrapsAtDepthLimit) {
  Module m;
  FunctionBuilder b(m, "down", 1);
  Reg n = b.arg(0);
  BlockId base = b.new_block(), rec = b.new_block();
  b.br(b.cmp_le(n, b.imm(0)), base, rec);
  b.switch_to(base);
  b.ret(n);
  b.switch_to(rec);
  b.ret(b.call(0, {b.sub_i(n, 1)}));
  b.finish();
  sim::Simulator s(m, sim::amd_like());
  EXPECT_EQ(s.call("down", {100}).ret, 0);       // fine
  EXPECT_THROW(s.call("down", {100000}), sim::TrapError);
}

// --- optimizer corner cases -------------------------------------------------

TEST(OptCorners, DceNeverRemovesCalls) {
  Module m;
  FuncId effectful;
  {
    // Writes memory: removing the call would be observable.
    Global g;
    g.name = "cell";
    g.elem_width = 8;
    g.count = 1;
    m.add_global(g);
    FunctionBuilder b(m, "bump", 0);
    Reg addr = b.global_addr(0);
    b.store(addr, 0, b.add_i(b.load(addr, 0, MemWidth::W8), 1),
            MemWidth::W8);
    b.ret();
    effectful = b.finish();
  }
  {
    FunctionBuilder b(m, "main", 0);
    b.call_void(effectful, {});
    Reg dead = b.call(effectful, {});  // result unused, call must stay
    (void)dead;
    b.ret(b.load(b.global_addr(0), 0, MemWidth::W8));
    b.finish();
  }
  for (auto& fn : m.functions()) opt::dce(fn);
  sim::Simulator s(m, sim::amd_like());
  EXPECT_EQ(s.run().ret, 2);
}

TEST(OptCorners, SimplifyCfgThreadsJumpChains) {
  Module m;
  FunctionBuilder b(m, "main", 0);
  Reg v = b.imm(7);
  BlockId hop1 = b.new_block(), hop2 = b.new_block(), end = b.new_block();
  b.jump(hop1);
  b.switch_to(hop1);
  b.jump(hop2);
  b.switch_to(hop2);
  b.jump(end);
  b.switch_to(end);
  b.ret(v);
  b.finish();
  EXPECT_TRUE(opt::simplify_cfg(m.function(0)));
  EXPECT_EQ(m.function(0).blocks.size(), 1u);
  sim::Simulator s(m, sim::amd_like());
  EXPECT_EQ(s.run().ret, 7);
}

TEST(OptCorners, LicmReusesExistingPreheader) {
  // A loop whose header already has a unique jump-terminated out-of-loop
  // predecessor: LICM must hoist there without growing the CFG.
  wl::Workload w = wl::make_workload("fir");
  Function& fn = w.module.function(w.module.find_function("main"));
  opt::licm(fn);
  const std::size_t blocks_after_first = fn.blocks.size();
  opt::licm(fn);  // idempotent on CFG shape
  EXPECT_EQ(fn.blocks.size(), blocks_after_first);
  sim::Simulator s(w.module, sim::amd_like());
  EXPECT_EQ(s.run().ret, w.expected_checksum);
}

TEST(OptCorners, InlineHandlesCallInMiddleOfBlock) {
  Module m;
  FuncId leaf;
  {
    FunctionBuilder b(m, "twice", 1);
    b.ret(b.mul_i(b.arg(0), 2));
    leaf = b.finish();
  }
  FunctionBuilder b(m, "main", 0);
  Reg pre = b.imm(5);
  Reg mid = b.call(leaf, {pre});
  Reg post = b.add_i(mid, 1);  // instructions after the call in same block
  b.ret(post);
  b.finish();
  EXPECT_TRUE(opt::inline_calls(m));
  ASSERT_EQ(verify(m), "");
  sim::Simulator s(m, sim::amd_like());
  EXPECT_EQ(s.run().ret, 11);
}

// --- search-layer equivalences ----------------------------------------------

TEST(SearchCorners, EvalFlagsMatchesManualPipeline) {
  wl::Workload w = wl::make_workload("crc32");
  search::Evaluator eval(w.module, sim::amd_like());
  const opt::OptFlags flags = opt::fast_flags();
  const auto via_flags = eval.eval_flags(flags);
  const auto via_seq = eval.eval_sequence(opt::pipeline(flags));
  EXPECT_EQ(via_flags.cycles, via_seq.cycles);
  EXPECT_EQ(via_flags.code_size, via_seq.code_size);
}

TEST(SearchCorners, GaRepairKeepsUnrollConstraintUnderHighMutation) {
  wl::Workload w = wl::make_workload("crc32");
  search::Evaluator eval(w.module, sim::amd_like());
  search::SequenceSpace space;
  support::Rng rng(99);
  search::GaParams params;
  params.mutation_rate = 0.9;  // stress the repair path
  const auto trace =
      search::genetic_search(eval, space, rng, 40,
                             search::Objective::Cycles, params);
  EXPECT_TRUE(space.valid(trace.best_seq));
}

TEST(SearchCorners, EmptySequenceIsIdentity) {
  wl::Workload w = wl::make_workload("bitcount");
  search::Evaluator eval(w.module, sim::amd_like());
  sim::Simulator s(w.module, sim::amd_like());
  EXPECT_EQ(eval.eval_sequence({}).cycles, s.run().cycles);
}

}  // namespace
