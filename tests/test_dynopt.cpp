// Dynamic-optimization tests: phase detection, version switching under a
// live simulator, auditing correctness (checksums preserved across
// switches), and the core claim — the auditor tracks the per-phase best
// version and beats the worst static choice.
#include <gtest/gtest.h>

#include <set>

#include "dynopt/dynopt.hpp"
#include "sim/interpreter.hpp"
#include "support/assert.hpp"
#include "workloads/workloads.hpp"

namespace {

using namespace ilc;

TEST(PhaseDetector, StableAfterWindowOfSimilarSignatures) {
  dyn::PhaseDetector det(0.25, 3);
  EXPECT_FALSE(det.stable());
  det.feed({1.0, 2.0});
  det.feed({1.02, 2.01});
  EXPECT_FALSE(det.stable());  // window not full
  det.feed({0.99, 1.98});
  EXPECT_TRUE(det.stable());
  EXPECT_EQ(det.phase_id(), 0u);
}

TEST(PhaseDetector, JumpStartsNewPhase) {
  dyn::PhaseDetector det(0.25, 3);
  for (int i = 0; i < 4; ++i) det.feed({1.0, 2.0});
  EXPECT_TRUE(det.stable());
  det.feed({10.0, 0.1});  // big jump
  EXPECT_EQ(det.phase_id(), 1u);
  EXPECT_FALSE(det.stable());
  det.feed({10.0, 0.1});
  det.feed({10.0, 0.1});
  EXPECT_TRUE(det.stable());
  EXPECT_EQ(det.phase_id(), 1u);
}

TEST(PhaseDetector, ResetClearsState) {
  dyn::PhaseDetector det;
  det.feed({1.0});
  det.feed({100.0});
  EXPECT_GT(det.phase_id(), 0u);
  det.reset();
  EXPECT_EQ(det.phase_id(), 0u);
  EXPECT_FALSE(det.stable());
}

TEST(SwitchModule, KeepsMemoryAcrossVersions) {
  wl::Workload w = wl::make_workload("adpcm");
  const auto versions = dyn::default_versions(w.module);
  ASSERT_EQ(versions.size(), 3u);
  sim::Simulator sim(versions[0].module, sim::amd_like());
  sim.call("init");
  std::int64_t sum = 0;
  for (std::int64_t i = 0; i < w.kernel_items; ++i) {
    sim.switch_module(versions[i % versions.size()].module);
    sum = (sum + sim.call("encode_block", {i}).ret) & 0x7fffffff;
  }
  // Codec state flowed across version switches: checksum must match.
  EXPECT_EQ(sum, w.kernel_checksum);
}

TEST(SwitchModule, RejectsLayoutChange) {
  wl::Workload base = wl::make_workload("mcf_lite");
  wl::Workload comp = wl::make_workload("mcf_lite");
  comp.module.set_ptr_bytes(4);  // layout differs
  sim::Simulator sim(base.module, sim::amd_like());
  EXPECT_THROW(sim.switch_module(comp.module), support::CheckError);
}

TEST(DefaultVersions, AreSemanticallyEquivalent) {
  wl::Workload w = wl::make_workload("phased_mix");
  for (const auto& v : dyn::default_versions(w.module)) {
    sim::Simulator sim(v.module, sim::amd_like());
    EXPECT_EQ(sim.run().ret, w.expected_checksum) << v.name;
  }
}

class DynoptFixture : public ::testing::Test {
 protected:
  static dyn::AuditReport* audited_;
  static std::vector<dyn::AuditReport>* statics_;
  static wl::Workload* w_;

  static void SetUpTestSuite() {
    w_ = new wl::Workload(wl::make_workload("phased_mix"));
    auto versions = dyn::default_versions(w_->module);
    dyn::DynamicOptimizer opt(std::move(versions), sim::amd_like());
    const dyn::KernelSpec spec{w_->kernel, w_->kernel_setup,
                               w_->kernel_items};
    audited_ = new dyn::AuditReport(opt.run_audited(spec));
    statics_ = new std::vector<dyn::AuditReport>();
    for (unsigned v = 0; v < opt.versions().size(); ++v)
      statics_->push_back(opt.run_static(spec, v));
  }
  static void TearDownTestSuite() {
    delete audited_;
    delete statics_;
    delete w_;
  }
};

dyn::AuditReport* DynoptFixture::audited_ = nullptr;
std::vector<dyn::AuditReport>* DynoptFixture::statics_ = nullptr;
wl::Workload* DynoptFixture::w_ = nullptr;

TEST_F(DynoptFixture, ChecksumSurvivesVersionSwitching) {
  EXPECT_EQ(audited_->checksum, w_->kernel_checksum);
  for (const auto& rep : *statics_)
    EXPECT_EQ(rep.checksum, w_->kernel_checksum);
}

TEST_F(DynoptFixture, AuditorReauditsAcrossPhases) {
  EXPECT_GE(audited_->audits, 2u) << "phased workload should trigger re-audit";
  // More than one version actually used.
  std::set<unsigned> used(audited_->version_per_item.begin(),
                          audited_->version_per_item.end());
  EXPECT_GE(used.size(), 2u);
}

TEST_F(DynoptFixture, AuditedBeatsWorstStaticAndO0) {
  std::uint64_t worst = 0, best = ~0ULL;
  for (const auto& rep : *statics_) {
    worst = std::max(worst, rep.total_cycles);
    best = std::min(best, rep.total_cycles);
  }
  EXPECT_LT(audited_->total_cycles, worst);
  // O0 is version 0.
  EXPECT_LT(audited_->total_cycles, (*statics_)[0].total_cycles);
  // And the audit overhead keeps it within a modest factor of the static
  // oracle.
  EXPECT_LT(static_cast<double>(audited_->total_cycles),
            1.35 * static_cast<double>(best));
}

TEST_F(DynoptFixture, ReportAccountingConsistent) {
  ASSERT_EQ(audited_->version_per_item.size(),
            static_cast<std::size_t>(w_->kernel_items));
  std::uint64_t sum = 0;
  for (auto c : audited_->cycles_per_version) sum += c;
  EXPECT_EQ(sum, audited_->total_cycles);
}

}  // namespace
