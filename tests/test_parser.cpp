// Round-trip tests for the textual IR form: print -> parse -> print must
// be a fixed point, and parsed functions must be structurally identical
// (same fingerprints) for every workload in the suite — covering every
// opcode, annotation, and declaration shape the printer can emit.
#include <gtest/gtest.h>

#include "ir/builder.hpp"
#include "ir/fingerprint.hpp"
#include "ir/parser.hpp"
#include "ir/printer.hpp"
#include "ir/verifier.hpp"
#include "opt/pipelines.hpp"
#include "support/assert.hpp"
#include "workloads/workloads.hpp"

namespace {

using namespace ilc;
using namespace ilc::ir;

class ParserRoundTrip : public ::testing::TestWithParam<std::string> {};

TEST_P(ParserRoundTrip, PrintParsePrintIsFixedPoint) {
  wl::Workload w = wl::make_workload(GetParam());
  const std::string text = to_string(w.module);
  const Module parsed = parse_module(text);
  EXPECT_EQ(to_string(parsed), text);
}

TEST_P(ParserRoundTrip, FunctionFingerprintsSurvive) {
  wl::Workload w = wl::make_workload(GetParam());
  const Module parsed = parse_module(to_string(w.module));
  ASSERT_EQ(parsed.functions().size(), w.module.functions().size());
  for (std::size_t f = 0; f < parsed.functions().size(); ++f)
    EXPECT_EQ(fingerprint(parsed.functions()[f]),
              fingerprint(w.module.functions()[f]));
  EXPECT_EQ(verify(parsed), "");
}

TEST_P(ParserRoundTrip, OptimizedCodeAlsoRoundTrips) {
  // Optimized modules exercise annotations and shapes the raw builders
  // may not (compressed widths, prefetches, inlined frames).
  wl::Workload w = wl::make_workload(GetParam());
  opt::run_sequence(w.module, opt::fast_pipeline());
  opt::run_pass(opt::PassId::PtrCompress, w.module);
  const std::string text = to_string(w.module);
  const Module parsed = parse_module(text);
  EXPECT_EQ(to_string(parsed), text);
  EXPECT_EQ(verify(parsed), "");
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, ParserRoundTrip,
                         ::testing::ValuesIn(wl::workload_names()),
                         [](const auto& info) { return info.param; });

TEST(Parser, HandlesEveryScalarOpcodeShape) {
  Module m;
  FunctionBuilder b(m, "ops", 2, 32);
  Reg x = b.arg(0), y = b.arg(1);
  Reg acc = b.add(x, y);
  acc = b.sub(acc, y);
  acc = b.mul(acc, y);
  acc = b.div(acc, y);
  acc = b.rem(acc, y);
  acc = b.and_(acc, y);
  acc = b.or_(acc, y);
  acc = b.xor_(acc, y);
  acc = b.shl(acc, b.imm(1));
  acc = b.shr(acc, b.imm(1));
  acc = b.min(acc, y);
  acc = b.max(acc, y);
  acc = b.neg(acc);
  acc = b.not_(acc);
  acc = b.mov(acc);
  Reg c = b.cmp_eq(acc, y);
  c = b.or_(c, b.cmp_ne(acc, y));
  c = b.or_(c, b.cmp_lt(acc, y));
  c = b.or_(c, b.cmp_le(acc, y));
  c = b.or_(c, b.cmp_gt(acc, y));
  c = b.or_(c, b.cmp_ge(acc, y));
  Reg fa = b.frame_addr(8);
  b.store(fa, 0, c, MemWidth::W4);
  b.prefetch(fa, 64);
  b.ret(b.load(fa, 0, MemWidth::W4));
  b.finish();

  const std::string text = to_string(m);
  const Module parsed = parse_module(text);
  EXPECT_EQ(to_string(parsed), text);
}

TEST(Parser, NegativeImmediatesAndOffsets) {
  Module m;
  Global g;
  g.name = "buf";
  g.elem_width = 8;
  g.count = 8;
  const GlobalId gid = m.add_global(g);
  FunctionBuilder b(m, "main", 0);
  Reg base = b.global_addr(gid);
  Reg mid = b.add(base, b.imm(32));
  Reg v = b.load(mid, -8, MemWidth::W8);
  b.store(mid, -16, b.imm(-12345), MemWidth::W8);
  b.ret(v);
  b.finish();
  const std::string text = to_string(m);
  EXPECT_EQ(to_string(parse_module(text)), text);
}

TEST(Parser, ControlFlowShapes) {
  Module m;
  FuncId callee;
  {
    FunctionBuilder b(m, "callee", 3);
    b.ret(b.add(b.arg(0), b.add(b.arg(1), b.arg(2))));
    callee = b.finish();
  }
  {
    FunctionBuilder b(m, "main", 0);
    Reg one = b.imm(1);
    BlockId t = b.new_block(), f = b.new_block(), done = b.new_block();
    b.br(one, t, f);
    b.switch_to(t);
    b.call_void(callee, {one, one, one});
    b.jump(done);
    b.switch_to(f);
    Reg r = b.call(callee, {one, one, one});
    (void)r;
    b.jump(done);
    b.switch_to(done);
    b.ret();  // void return
    b.finish();
  }
  const std::string text = to_string(m);
  const Module parsed = parse_module(text);
  EXPECT_EQ(to_string(parsed), text);
  EXPECT_EQ(verify(parsed), "");
}

TEST(Parser, RejectsMalformedInput) {
  EXPECT_THROW(parse_module("func @f(0) regs=1 frame=0 {\nbb0:\n  r0 = bogus r1, r2\n}\n"),
               support::CheckError);
  EXPECT_THROW(parse_module("bb0:\n  ret\n"), support::CheckError);
  EXPECT_THROW(
      parse_module("func @f(0) regs=1 frame=0 {\nbb7:\n  ret\n}\n"),
      support::CheckError);  // non-sequential block label
  EXPECT_THROW(
      parse_module("func @f(0) regs=1 frame=0 {\nbb0:\n  r0 = imm\n}\n"),
      support::CheckError);  // missing integer
}

TEST(Parser, PreservesRecordsAndGlobals) {
  wl::Workload w = wl::make_workload("mcf_lite");
  const Module parsed = parse_module(to_string(w.module));
  ASSERT_EQ(parsed.records().size(), w.module.records().size());
  EXPECT_EQ(parsed.records()[0].name, w.module.records()[0].name);
  ASSERT_EQ(parsed.globals().size(), w.module.globals().size());
  for (std::size_t g = 0; g < parsed.globals().size(); ++g) {
    EXPECT_EQ(parsed.globals()[g].name, w.module.globals()[g].name);
    EXPECT_EQ(parsed.globals()[g].count, w.module.globals()[g].count);
    EXPECT_EQ(parsed.global_bytes(static_cast<GlobalId>(g)),
              w.module.global_bytes(static_cast<GlobalId>(g)));
  }
  EXPECT_EQ(parsed.ptr_bytes(), w.module.ptr_bytes());
}

}  // namespace
