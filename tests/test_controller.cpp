// Controller tests: KB building (the training period), the counter model
// (PCModel), and the one-shot / iterative controller paths. Uses a small
// sub-suite to keep runtime modest.
#include <gtest/gtest.h>

#include <cmath>

#include "controller/controller.hpp"
#include "controller/kb_builder.hpp"
#include "sim/interpreter.hpp"
#include "workloads/workloads.hpp"

namespace {

using namespace ilc;

class ControllerFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    suite_ = new std::vector<wl::Workload>();
    for (const auto& name :
         {"mcf_lite", "crc32", "fir", "sha_lite", "dotprod", "histogram"})
      suite_->push_back(wl::make_workload(name));
    std::vector<ctrl::SuiteProgram> programs;
    for (const auto& w : *suite_) programs.push_back({w.name, &w.module});
    base_ = new kb::KnowledgeBase(ctrl::build_knowledge_base(
        programs, sim::amd_like(), /*sequence_budget=*/25,
        /*flag_budget=*/20, /*seed=*/99));
  }
  static void TearDownTestSuite() {
    delete base_;
    delete suite_;
    base_ = nullptr;
    suite_ = nullptr;
  }

  static std::vector<wl::Workload>* suite_;
  static kb::KnowledgeBase* base_;
};

std::vector<wl::Workload>* ControllerFixture::suite_ = nullptr;
kb::KnowledgeBase* ControllerFixture::base_ = nullptr;

TEST_F(ControllerFixture, KbHasAllRecordKinds) {
  EXPECT_EQ(base_->programs().size(), 6u);
  for (const auto& program : base_->programs()) {
    EXPECT_EQ(base_->for_program(program, "profile").size(), 1u) << program;
    EXPECT_EQ(base_->for_program(program, "sequence").size(), 25u) << program;
    EXPECT_EQ(base_->for_program(program, "flags").size(), 20u) << program;
  }
}

TEST_F(ControllerFixture, KbRoundTripsThroughStandardFormat) {
  const auto parsed = kb::KnowledgeBase::parse(base_->serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->size(), base_->size());
  // The parsed KB must drive the controller identically.
  ctrl::CounterModel a(*base_, "mcf_lite", "amd-like");
  ctrl::CounterModel b(*parsed, "mcf_lite", "amd-like");
  const auto* profile = base_->for_program("mcf_lite", "profile")[0];
  EXPECT_EQ(a.predict(profile->dynamic_features).encode(),
            b.predict(profile->dynamic_features).encode());
}

TEST_F(ControllerFixture, CounterModelExcludesTargetProgram) {
  ctrl::CounterModel model(*base_, "mcf_lite", "amd-like");
  EXPECT_EQ(model.training_programs(), 5u);
  const auto* profile = base_->for_program("mcf_lite", "profile")[0];
  model.predict(profile->dynamic_features);
  EXPECT_NE(model.nearest_program(), "mcf_lite");
}

TEST_F(ControllerFixture, OneShotPredictionBeatsO0OnAverage) {
  // Leave-one-out: one-shot prediction should deliver real speedup over
  // O0 for most programs (geomean > 1).
  double log_speedup = 0.0;
  for (const auto& w : *suite_) {
    ctrl::IntelligentController controller(*base_, "amd-like");
    const auto* profile = base_->for_program(w.name, "profile")[0];
    const opt::OptFlags flags =
        controller.one_shot(profile->dynamic_features, w.name);
    search::Evaluator eval(w.module, sim::amd_like());
    const auto predicted = eval.eval_flags(flags);
    const auto o0 = eval.eval_flags(opt::o0_flags());
    log_speedup += std::log(static_cast<double>(o0.cycles) /
                            static_cast<double>(predicted.cycles));
  }
  // The bar: a clear positive geomean speedup with only 5 training
  // programs and 20 flag points each (the benches use a larger training
  // period and do better).
  EXPECT_GT(std::exp(log_speedup / suite_->size()), 1.1);
}

TEST_F(ControllerFixture, IterativeModeImprovesAndConverges) {
  const wl::Workload& target = (*suite_)[1];  // crc32
  ctrl::IntelligentController controller(*base_, "amd-like");
  search::Evaluator eval(target.module, sim::amd_like());
  support::Rng rng(7);
  const auto static_features = feat::extract_static(target.module);
  const auto trace =
      controller.iterative(eval, static_features, target.name, 12, rng);
  EXPECT_EQ(trace.evaluations, 12u);
  const auto o0 = eval.eval_flags(opt::o0_flags());
  EXPECT_LT(trace.best_metric, o0.cycles);
}

TEST_F(ControllerFixture, FocusedModelBuildsFromKb) {
  search::SequenceSpace space;
  auto model =
      ctrl::build_focused_model(*base_, "fir", "amd-like", space, 0.2);
  wl::Workload fir = wl::make_workload("fir");
  model.set_target(feat::extract_static(fir.module));
  EXPECT_NE(model.selected_program(), "fir");
  support::Rng rng(3);
  for (int i = 0; i < 10; ++i)
    EXPECT_TRUE(space.valid(model.sample(rng)));
}

TEST_F(ControllerFixture, ProfileRecordCarriesCounterSignature) {
  const auto* profile = base_->for_program("mcf_lite", "profile")[0];
  EXPECT_GT(profile->counters[sim::L2_TCM], 0u);
  EXPECT_EQ(profile->dynamic_features.size(),
            feat::dynamic_feature_names().size());
  EXPECT_EQ(profile->static_features.size(),
            feat::static_feature_names().size());
  EXPECT_GT(profile->cycles, 0u);
}

}  // namespace
