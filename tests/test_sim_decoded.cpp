// Differential tests of the pre-decoded execution path: the decoded
// simulator must be observationally indistinguishable from the legacy
// tree-walking interpreter — same return value, same cycle count, same
// instruction count, and the same value for every hardware counter — on
// every stock workload and on a batch of randomized modules (random
// optimization sequences applied to suite programs, which perturbs block
// structure, branch placement, instruction mix, and record layouts).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "ir/builder.hpp"
#include "ir/fingerprint.hpp"
#include "search/space.hpp"
#include "sim/decoded_program.hpp"
#include "sim/interpreter.hpp"
#include "sim/program_cache.hpp"
#include "support/rng.hpp"
#include "workloads/workloads.hpp"

namespace {

using namespace ilc;

sim::RunResult run_with(const ir::Module& mod, bool decoded) {
  sim::MachineConfig cfg = sim::amd_like();
  cfg.decoded_execution = decoded;
  sim::Simulator sim(mod, cfg);
  return sim.run();
}

void expect_identical(const ir::Module& mod, const std::string& label) {
  const sim::RunResult legacy = run_with(mod, false);
  const sim::RunResult decoded = run_with(mod, true);
  EXPECT_EQ(legacy.ret, decoded.ret) << label;
  EXPECT_EQ(legacy.cycles, decoded.cycles) << label;
  EXPECT_EQ(legacy.instructions, decoded.instructions) << label;
  for (unsigned c = 0; c < sim::kNumCounters; ++c)
    EXPECT_EQ(legacy.counters.v[c], decoded.counters.v[c])
        << label << " counter "
        << sim::counter_name(static_cast<sim::Counter>(c));
}

// --- stock workloads ------------------------------------------------------

class DecodedDifferential : public ::testing::TestWithParam<std::string> {};

TEST_P(DecodedDifferential, MatchesLegacyOnStockWorkload) {
  const wl::Workload w = wl::make_workload(GetParam());
  expect_identical(w.module, w.name);
}

INSTANTIATE_TEST_SUITE_P(Suite, DecodedDifferential,
                         ::testing::ValuesIn(wl::workload_names()),
                         [](const auto& info) { return info.param; });

// --- randomized modules ---------------------------------------------------

TEST(DecodedDifferentialRandom, MatchesLegacyOnRandomizedModules) {
  // 20 random points of the optimization space, cycling through the
  // suite: each optimized module is a structurally distinct program.
  support::Rng rng(20080216);
  const search::SequenceSpace space;
  const auto& names = wl::workload_names();
  for (int i = 0; i < 20; ++i) {
    const wl::Workload w = wl::make_workload(names[i % names.size()]);
    ir::Module mod = w.module;
    const auto seq = space.sample(rng);
    opt::run_sequence(mod, seq);
    expect_identical(mod, w.name + "/" + search::sequence_to_string(seq));
  }
}

// --- decoded representation & cache ---------------------------------------

TEST(DecodedProgram, FlattensEveryFunctionAndInstruction) {
  const wl::Workload w = wl::make_workload("adpcm");
  const auto prog = sim::decode_program(w.module);
  ASSERT_EQ(prog->funcs.size(), w.module.functions().size());
  EXPECT_EQ(prog->fingerprint, ir::fingerprint(w.module));
  std::size_t static_instrs = 0;
  for (const auto& fn : w.module.functions())
    for (const auto& b : fn.blocks) static_instrs += b.insts.size();
  EXPECT_EQ(prog->instruction_count, static_instrs);
  for (std::size_t f = 0; f < prog->funcs.size(); ++f) {
    const auto& dfn = prog->funcs[f];
    EXPECT_EQ(dfn.name, w.module.functions()[f].name);
    ASSERT_EQ(dfn.block_entry.size(), w.module.functions()[f].blocks.size());
    // Block entries partition the flat code array in order.
    EXPECT_EQ(dfn.block_entry.front(), 0u);
    for (std::size_t b = 1; b < dfn.block_entry.size(); ++b)
      EXPECT_GT(dfn.block_entry[b], dfn.block_entry[b - 1]);
  }
}

TEST(ProgramCache, SharesOneDecodingPerFingerprint) {
  sim::ProgramCache cache(8);
  const wl::Workload w = wl::make_workload("dotprod");
  const auto a = cache.get(w.module);
  const auto b = cache.get(w.module);
  EXPECT_EQ(a.get(), b.get());  // same decoded program object
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 1u);
}

TEST(ProgramCache, EvictsLeastRecentlyUsedAtCapacity) {
  sim::ProgramCache cache(2);
  const auto names = std::vector<std::string>{"dotprod", "rle", "crc32"};
  std::vector<ir::Module> mods;
  for (const auto& n : names) mods.push_back(wl::make_workload(n).module);
  cache.get(mods[0]);
  cache.get(mods[1]);
  cache.get(mods[2]);  // evicts mods[0]
  EXPECT_EQ(cache.size(), 2u);
  cache.get(mods[0]);  // must re-decode
  EXPECT_EQ(cache.misses(), 4u);
}

// --- superblock boundary stressors ----------------------------------------
//
// The engine retires instructions at run (superblock) granularity, so the
// interesting places are the boundaries: every terminator kind, blocks
// whose run is a single instruction, very long straight-line runs, and the
// resume point after a call. Each shape is checked against the legacy
// interpreter in all four decoded configurations — {threaded, switch}
// dispatch × counters {on, off}.

sim::RunResult run_decoded_mode(const ir::Module& mod, sim::DispatchMode dm,
                                bool counters) {
  sim::MachineConfig cfg = sim::amd_like();
  cfg.decoded_execution = true;
  cfg.dispatch = dm;
  cfg.collect_counters = counters;
  sim::Simulator sim(mod, cfg);
  return sim.run();
}

void expect_identical_all_modes(const ir::Module& mod,
                                const std::string& label) {
  const sim::RunResult legacy = run_with(mod, false);
  for (const sim::DispatchMode dm :
       {sim::DispatchMode::Threaded, sim::DispatchMode::Switch}) {
    for (const bool counters : {true, false}) {
      const std::string tag =
          label + (dm == sim::DispatchMode::Threaded ? "/threaded" : "/switch") +
          (counters ? "/counters" : "/fast");
      const sim::RunResult got = run_decoded_mode(mod, dm, counters);
      EXPECT_EQ(legacy.ret, got.ret) << tag;
      EXPECT_EQ(legacy.cycles, got.cycles) << tag;
      EXPECT_EQ(legacy.instructions, got.instructions) << tag;
      for (unsigned c = 0; c < sim::kNumCounters; ++c) {
        const std::uint64_t want = counters ? legacy.counters.v[c] : 0;
        EXPECT_EQ(want, got.counters.v[c])
            << tag << " counter "
            << sim::counter_name(static_cast<sim::Counter>(c));
      }
    }
  }
}

TEST(SuperblockBoundary, SingleInstructionBlocksJumpChain) {
  // A chain of blocks each holding exactly one Jump: every superblock is a
  // lone terminator, so run accounting must settle one instruction per
  // control transfer.
  ir::Module m;
  ir::FunctionBuilder b(m, "main", 0);
  const ir::Reg v = b.imm(7);
  std::vector<ir::BlockId> hops;
  for (int i = 0; i < 6; ++i) hops.push_back(b.new_block());
  b.jump(hops[0]);
  for (int i = 0; i < 6; ++i) {
    b.switch_to(hops[i]);
    if (i + 1 < 6) {
      b.jump(hops[i + 1]);
    } else {
      b.ret(v);
    }
  }
  b.finish();
  expect_identical_all_modes(m, "jump_chain");
}

TEST(SuperblockBoundary, BrTakenAndFallthroughEveryIteration) {
  // A counted loop: the Br alternates outcome on its last iteration, and
  // the loop body ends in a backward branch (the predictor-heavy shape).
  ir::Module m;
  ir::FunctionBuilder b(m, "main", 0);
  const ir::Reg n = b.imm(37);
  const ir::Reg acc0 = b.imm(0);
  const ir::Reg i0 = b.imm(0);
  const ir::BlockId head = b.new_block();
  const ir::BlockId body = b.new_block();
  const ir::BlockId done = b.new_block();
  const ir::Reg acc = b.fresh();
  const ir::Reg i = b.fresh();
  b.mov_to(acc, acc0);
  b.mov_to(i, i0);
  b.jump(head);
  b.switch_to(head);
  b.br(b.cmp_lt(i, n), body, done);
  b.switch_to(body);
  b.mov_to(acc, b.add(acc, i));
  b.mov_to(i, b.add_i(i, 1));
  b.jump(head);
  b.switch_to(done);
  b.ret(acc);
  b.finish();
  expect_identical_all_modes(m, "br_loop");
}

TEST(SuperblockBoundary, MaxWidthStraightLineRun) {
  // One block with hundreds of dependent ALU ops: a single superblock far
  // wider than any loop-carried shape in the workload suite; retirement
  // happens once, at the terminating Ret.
  ir::Module m;
  ir::FunctionBuilder b(m, "main", 0);
  ir::Reg v = b.imm(1);
  for (int i = 0; i < 400; ++i) v = b.add_i(v, i % 7);
  b.ret(v);
  b.finish();
  expect_identical_all_modes(m, "max_width_run");
}

TEST(SuperblockBoundary, CallSuspendsAndResumesMidRun) {
  // Calls end a superblock mid-block: instructions after the call resume a
  // fresh run in the same block, and the callee runs its own runs in
  // between (including a recursive one).
  ir::Module m;
  ir::FunctionBuilder fb(m, "fib", 1);
  {
    const ir::Reg n = fb.arg(0);
    const ir::BlockId base = fb.new_block();
    const ir::BlockId rec = fb.new_block();
    fb.br(fb.cmp_lt_i(n, 2), base, rec);
    fb.switch_to(base);
    fb.ret(n);
    fb.switch_to(rec);
    // Two calls in one block: suspend/resume twice, then more ALU work.
    const ir::Reg a = fb.call(0, {fb.sub_i(n, 1)});
    const ir::Reg c = fb.call(0, {fb.sub_i(n, 2)});
    fb.ret(fb.add(a, c));
  }
  const ir::FuncId fib = fb.finish();
  ir::FunctionBuilder mb(m, "main", 0);
  const ir::Reg r = mb.call(fib, {mb.imm(10)});
  mb.ret(mb.add_i(r, 1000));
  mb.finish();
  expect_identical_all_modes(m, "call_resume");
}

TEST(SuperblockBoundary, BudgetTrapFiresInEveryMode) {
  // An infinite loop must hit the instruction-budget trap on the legacy
  // path and in all four decoded configurations. (The decoded engine
  // checks the budget at superblock granularity, so the post-trap executed
  // count may legitimately exceed the legacy path's by a partial block —
  // only the trap itself is asserted here.)
  ir::Module m;
  ir::FunctionBuilder b(m, "main", 0);
  const ir::BlockId spin = b.new_block();
  b.jump(spin);
  b.switch_to(spin);
  b.jump(spin);
  b.finish();

  sim::MachineConfig cfg = sim::amd_like();
  cfg.max_instructions = 10'000;
  cfg.decoded_execution = false;
  EXPECT_THROW(sim::Simulator(m, cfg).run(), sim::TrapError);
  cfg.decoded_execution = true;
  for (const sim::DispatchMode dm :
       {sim::DispatchMode::Threaded, sim::DispatchMode::Switch}) {
    for (const bool counters : {true, false}) {
      cfg.dispatch = dm;
      cfg.collect_counters = counters;
      EXPECT_THROW(sim::Simulator(m, cfg).run(), sim::TrapError);
    }
  }
}

TEST(SuperblockBoundary, StockWorkloadAgreesInAllFourModes) {
  // End-to-end belt-and-braces: a real workload through every dispatch ×
  // counter configuration.
  const wl::Workload w = wl::make_workload("crc32");
  expect_identical_all_modes(w.module, "crc32");
}

// --- program cache: single-flight & eviction accounting -------------------

TEST(ProgramCache, CountsEvictions) {
  sim::ProgramCache cache(2);
  for (const char* n : {"dotprod", "rle", "crc32"})
    cache.get(wl::make_workload(n).module);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.evictions(), 1u);
}

TEST(ProgramCache, StampedeDecodesOnce) {
  // Many threads demand the same (cold) fingerprint at once. Single-flight
  // means exactly one decode: one thread leads, the rest block on the
  // pending entry and pick up the published program — under the old
  // decode-outside-the-lock scheme this raced and decoded per thread.
  sim::ProgramCache cache(8);
  const wl::Workload w = wl::make_workload("phased_mix");
  constexpr int kThreads = 8;
  std::atomic<int> ready{0};
  std::vector<std::shared_ptr<const sim::DecodedProgram>> got(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      ready.fetch_add(1);
      while (ready.load() < kThreads) {
      }  // start the stampede together
      got[t] = cache.get(w.module);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), static_cast<std::uint64_t>(kThreads - 1));
  for (int t = 1; t < kThreads; ++t) EXPECT_EQ(got[0].get(), got[t].get());
}

TEST(DecodedSimulator, ExposesDecodedProgramOnlyWhenEnabled) {
  const wl::Workload w = wl::make_workload("dotprod");
  sim::MachineConfig on = sim::amd_like();
  sim::MachineConfig off = sim::amd_like();
  off.decoded_execution = false;
  sim::Simulator with(w.module, on);
  sim::Simulator without(w.module, off);
  EXPECT_NE(with.decoded_program(), nullptr);
  EXPECT_EQ(without.decoded_program(), nullptr);
}

}  // namespace
