// Differential tests of the pre-decoded execution path: the decoded
// simulator must be observationally indistinguishable from the legacy
// tree-walking interpreter — same return value, same cycle count, same
// instruction count, and the same value for every hardware counter — on
// every stock workload and on a batch of randomized modules (random
// optimization sequences applied to suite programs, which perturbs block
// structure, branch placement, instruction mix, and record layouts).
#include <gtest/gtest.h>

#include "ir/fingerprint.hpp"
#include "search/space.hpp"
#include "sim/decoded_program.hpp"
#include "sim/interpreter.hpp"
#include "sim/program_cache.hpp"
#include "support/rng.hpp"
#include "workloads/workloads.hpp"

namespace {

using namespace ilc;

sim::RunResult run_with(const ir::Module& mod, bool decoded) {
  sim::MachineConfig cfg = sim::amd_like();
  cfg.decoded_execution = decoded;
  sim::Simulator sim(mod, cfg);
  return sim.run();
}

void expect_identical(const ir::Module& mod, const std::string& label) {
  const sim::RunResult legacy = run_with(mod, false);
  const sim::RunResult decoded = run_with(mod, true);
  EXPECT_EQ(legacy.ret, decoded.ret) << label;
  EXPECT_EQ(legacy.cycles, decoded.cycles) << label;
  EXPECT_EQ(legacy.instructions, decoded.instructions) << label;
  for (unsigned c = 0; c < sim::kNumCounters; ++c)
    EXPECT_EQ(legacy.counters.v[c], decoded.counters.v[c])
        << label << " counter "
        << sim::counter_name(static_cast<sim::Counter>(c));
}

// --- stock workloads ------------------------------------------------------

class DecodedDifferential : public ::testing::TestWithParam<std::string> {};

TEST_P(DecodedDifferential, MatchesLegacyOnStockWorkload) {
  const wl::Workload w = wl::make_workload(GetParam());
  expect_identical(w.module, w.name);
}

INSTANTIATE_TEST_SUITE_P(Suite, DecodedDifferential,
                         ::testing::ValuesIn(wl::workload_names()),
                         [](const auto& info) { return info.param; });

// --- randomized modules ---------------------------------------------------

TEST(DecodedDifferentialRandom, MatchesLegacyOnRandomizedModules) {
  // 20 random points of the optimization space, cycling through the
  // suite: each optimized module is a structurally distinct program.
  support::Rng rng(20080216);
  const search::SequenceSpace space;
  const auto& names = wl::workload_names();
  for (int i = 0; i < 20; ++i) {
    const wl::Workload w = wl::make_workload(names[i % names.size()]);
    ir::Module mod = w.module;
    const auto seq = space.sample(rng);
    opt::run_sequence(mod, seq);
    expect_identical(mod, w.name + "/" + search::sequence_to_string(seq));
  }
}

// --- decoded representation & cache ---------------------------------------

TEST(DecodedProgram, FlattensEveryFunctionAndInstruction) {
  const wl::Workload w = wl::make_workload("adpcm");
  const auto prog = sim::decode_program(w.module);
  ASSERT_EQ(prog->funcs.size(), w.module.functions().size());
  EXPECT_EQ(prog->fingerprint, ir::fingerprint(w.module));
  std::size_t static_instrs = 0;
  for (const auto& fn : w.module.functions())
    for (const auto& b : fn.blocks) static_instrs += b.insts.size();
  EXPECT_EQ(prog->instruction_count, static_instrs);
  for (std::size_t f = 0; f < prog->funcs.size(); ++f) {
    const auto& dfn = prog->funcs[f];
    EXPECT_EQ(dfn.name, w.module.functions()[f].name);
    ASSERT_EQ(dfn.block_entry.size(), w.module.functions()[f].blocks.size());
    // Block entries partition the flat code array in order.
    EXPECT_EQ(dfn.block_entry.front(), 0u);
    for (std::size_t b = 1; b < dfn.block_entry.size(); ++b)
      EXPECT_GT(dfn.block_entry[b], dfn.block_entry[b - 1]);
  }
}

TEST(ProgramCache, SharesOneDecodingPerFingerprint) {
  sim::ProgramCache cache(8);
  const wl::Workload w = wl::make_workload("dotprod");
  const auto a = cache.get(w.module);
  const auto b = cache.get(w.module);
  EXPECT_EQ(a.get(), b.get());  // same decoded program object
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 1u);
}

TEST(ProgramCache, EvictsLeastRecentlyUsedAtCapacity) {
  sim::ProgramCache cache(2);
  const auto names = std::vector<std::string>{"dotprod", "rle", "crc32"};
  std::vector<ir::Module> mods;
  for (const auto& n : names) mods.push_back(wl::make_workload(n).module);
  cache.get(mods[0]);
  cache.get(mods[1]);
  cache.get(mods[2]);  // evicts mods[0]
  EXPECT_EQ(cache.size(), 2u);
  cache.get(mods[0]);  // must re-decode
  EXPECT_EQ(cache.misses(), 4u);
}

TEST(DecodedSimulator, ExposesDecodedProgramOnlyWhenEnabled) {
  const wl::Workload w = wl::make_workload("dotprod");
  sim::MachineConfig on = sim::amd_like();
  sim::MachineConfig off = sim::amd_like();
  off.decoded_execution = false;
  sim::Simulator with(w.module, on);
  sim::Simulator without(w.module, off);
  EXPECT_NE(with.decoded_program(), nullptr);
  EXPECT_EQ(without.decoded_program(), nullptr);
}

}  // namespace
