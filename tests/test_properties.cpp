// Cross-cutting property tests of the cost model and cache geometry —
// the invariants the experiments implicitly rely on: more issue width
// never hurts, slower DRAM never helps, bigger caches never hurt (for
// LRU-friendly workloads), and cache behaviour matches first principles
// across geometries.
#include <gtest/gtest.h>

#include "sim/cache.hpp"
#include "sim/interpreter.hpp"
#include "support/rng.hpp"
#include "workloads/workloads.hpp"

namespace {

using namespace ilc;

// --- cache geometry sweep ------------------------------------------------

struct Geometry {
  std::uint32_t size, line, ways;
};

class CacheGeometry : public ::testing::TestWithParam<Geometry> {};

TEST_P(CacheGeometry, WorkingSetWithinCapacityAlwaysHitsAfterWarmup) {
  const Geometry g = GetParam();
  sim::Cache cache({g.size, g.line, g.ways, 1});
  // Sequential touch of exactly the capacity: fits by construction.
  for (std::uint64_t a = 0; a < g.size; a += g.line) cache.access(a);
  for (std::uint64_t a = 0; a < g.size; a += g.line)
    EXPECT_TRUE(cache.access(a)) << "size=" << g.size << " line=" << g.line
                                 << " ways=" << g.ways << " addr=" << a;
}

TEST_P(CacheGeometry, DoubleCapacityStreamingEvictsEverything) {
  const Geometry g = GetParam();
  sim::Cache cache({g.size, g.line, g.ways, 1});
  for (std::uint64_t a = 0; a < 2 * g.size; a += g.line) cache.access(a);
  // The first half was evicted by the second (LRU, uniform sets).
  for (std::uint64_t a = 0; a < g.size; a += g.line)
    EXPECT_FALSE(cache.access(a));
}

TEST_P(CacheGeometry, SameLineDifferentOffsetsHit) {
  const Geometry g = GetParam();
  sim::Cache cache({g.size, g.line, g.ways, 1});
  cache.access(4096);
  for (std::uint32_t off = 1; off < g.line; off += 7)
    EXPECT_TRUE(cache.access(4096 + off));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CacheGeometry,
    ::testing::Values(Geometry{1024, 32, 1}, Geometry{1024, 32, 2},
                      Geometry{4096, 64, 2}, Geometry{4096, 64, 4},
                      Geometry{32768, 64, 8}, Geometry{65536, 128, 4}),
    [](const auto& info) {
      return std::to_string(info.param.size) + "b_" +
             std::to_string(info.param.line) + "l_" +
             std::to_string(info.param.ways) + "w";
    });

// --- cost-model monotonicity ---------------------------------------------

class CostModelMonotonicity
    : public ::testing::TestWithParam<std::string> {};

TEST_P(CostModelMonotonicity, WiderIssueNeverSlower) {
  wl::Workload w = wl::make_workload(GetParam());
  sim::MachineConfig narrow = sim::amd_like();
  narrow.issue_width = 1;
  sim::MachineConfig wide = sim::amd_like();
  wide.issue_width = 2;
  sim::Simulator s1(w.module, narrow);
  sim::Simulator s2(w.module, wide);
  const auto r1 = s1.run();
  const auto r2 = s2.run();
  EXPECT_EQ(r1.ret, r2.ret);
  EXPECT_LE(r2.cycles, r1.cycles);
}

TEST_P(CostModelMonotonicity, SlowerDramNeverFaster) {
  wl::Workload w = wl::make_workload(GetParam());
  sim::MachineConfig fast_mem = sim::amd_like();
  sim::MachineConfig slow_mem = sim::amd_like();
  slow_mem.mem_latency = 2 * fast_mem.mem_latency;
  sim::Simulator s1(w.module, fast_mem);
  sim::Simulator s2(w.module, slow_mem);
  const auto r1 = s1.run();
  const auto r2 = s2.run();
  EXPECT_EQ(r1.ret, r2.ret);
  EXPECT_GE(r2.cycles, r1.cycles);
  // Architectural event counts must be latency-independent (TOT_CYC is
  // the one timing-derived counter).
  for (unsigned c = 0; c < sim::kNumCounters; ++c) {
    if (c == sim::TOT_CYC) continue;
    EXPECT_EQ(r1.counters.v[c], r2.counters.v[c])
        << sim::counter_name(static_cast<sim::Counter>(c));
  }
}

TEST_P(CostModelMonotonicity, BiggerL2NeverMoreMisses) {
  wl::Workload w = wl::make_workload(GetParam());
  sim::MachineConfig small = sim::amd_like();
  sim::MachineConfig big = sim::amd_like();
  big.l2.size_bytes = 4 * small.l2.size_bytes;
  sim::Simulator s1(w.module, small);
  sim::Simulator s2(w.module, big);
  const auto r1 = s1.run();
  const auto r2 = s2.run();
  // LRU with a strictly larger same-associativity-scaled cache: for our
  // workloads (no pathological set-conflict patterns) misses must not
  // increase.
  EXPECT_LE(r2.counters[sim::L2_TCM], r1.counters[sim::L2_TCM]);
}

INSTANTIATE_TEST_SUITE_P(Suite, CostModelMonotonicity,
                         ::testing::Values("adpcm", "mcf_lite", "fir",
                                           "sha_lite", "linklist",
                                           "stencil"),
                         [](const auto& info) { return info.param; });

// --- determinism across process-level conditions --------------------------

TEST(Determinism, CountersIdenticalAcrossRepeatedConstruction) {
  // Guards against hidden global state (e.g. address-dependent hashing).
  sim::Counters first;
  for (int round = 0; round < 3; ++round) {
    wl::Workload w = wl::make_workload("histogram");
    sim::Simulator s(w.module, sim::amd_like());
    const auto r = s.run();
    if (round == 0) first = r.counters;
    else EXPECT_EQ(r.counters, first);
  }
}

}  // namespace
