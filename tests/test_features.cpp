// Characterization-layer tests: static features discriminate program
// shapes, dynamic features mirror counters, scaler/mutual-information
// behave.
#include <gtest/gtest.h>

#include <cmath>

#include "features/arch_probe.hpp"
#include "features/features.hpp"
#include "sim/interpreter.hpp"
#include "support/assert.hpp"
#include "workloads/workloads.hpp"

namespace {

using namespace ilc;

TEST(StaticFeatures, DimensionsAndNames) {
  wl::Workload w = wl::make_workload("adpcm");
  const auto f = feat::extract_static(w.module);
  EXPECT_EQ(f.size(), feat::static_feature_names().size());
  for (double v : f) EXPECT_TRUE(std::isfinite(v));
}

TEST(StaticFeatures, RatiosAreInUnitInterval) {
  for (const auto& name : wl::workload_names()) {
    wl::Workload w = wl::make_workload(name);
    const auto f = feat::extract_static(w.module);
    const auto& names = feat::static_feature_names();
    for (std::size_t i = 0; i < names.size(); ++i) {
      if (names[i].rfind("ratio_", 0) == 0 || names[i].rfind("frac", 0) == 0) {
        EXPECT_GE(f[i], 0.0) << name << " " << names[i];
        EXPECT_LE(f[i], 1.0) << name << " " << names[i];
      }
    }
  }
}

TEST(StaticFeatures, DiscriminateMemoryVsCompute) {
  wl::Workload mcf = wl::make_workload("mcf_lite");
  wl::Workload sha = wl::make_workload("sha_lite");
  const auto fm = feat::extract_static(mcf.module);
  const auto fs = feat::extract_static(sha.module);
  // ratio_ptr_mem index.
  std::size_t ptr_idx = 0;
  const auto& names = feat::static_feature_names();
  for (std::size_t i = 0; i < names.size(); ++i)
    if (names[i] == "ratio_ptr_mem") ptr_idx = i;
  EXPECT_GT(fm[ptr_idx], fs[ptr_idx]);
}

TEST(StaticFeatures, DistinctAcrossSuite) {
  // No two programs should have identical static feature vectors.
  std::vector<std::vector<double>> rows;
  for (const auto& name : wl::workload_names()) {
    wl::Workload w = wl::make_workload(name);
    rows.push_back(feat::extract_static(w.module));
  }
  for (std::size_t i = 0; i < rows.size(); ++i)
    for (std::size_t j = i + 1; j < rows.size(); ++j)
      EXPECT_GT(feat::euclidean(rows[i], rows[j]), 1e-9);
}

TEST(DynamicFeatures, MatchCounterRates) {
  sim::Counters c;
  c[sim::TOT_INS] = 1000;
  c[sim::TOT_CYC] = 2500;
  c[sim::L1_TCM] = 50;
  const auto f = feat::extract_dynamic(c);
  EXPECT_DOUBLE_EQ(f[0], 2.5);  // CPI
  const auto& names = feat::dynamic_feature_names();
  for (std::size_t i = 0; i < names.size(); ++i)
    if (names[i] == "L1_TCM_per_kilo_ins") EXPECT_DOUBLE_EQ(f[i], 50.0);
}

TEST(DynamicFeatures, ZeroInstructionsIsSafe) {
  const auto f = feat::extract_dynamic(sim::Counters{});
  for (double v : f) EXPECT_TRUE(std::isfinite(v));
}

TEST(Scaler, ZScoreNormalizes) {
  feat::Scaler s;
  s.fit({{0, 10}, {2, 10}, {4, 10}});
  const auto t = s.transform({2, 10});
  EXPECT_NEAR(t[0], 0.0, 1e-12);
  EXPECT_NEAR(t[1], 0.0, 1e-12);  // constant feature -> 0, not inf
  const auto hi = s.transform({4, 10});
  EXPECT_GT(hi[0], 1.0);
}

TEST(MutualInfo, InformativeFeatureBeatsNoise) {
  // Feature perfectly separating classes has high MI; constant ~0.
  std::vector<double> good, noise;
  std::vector<int> labels;
  for (int i = 0; i < 200; ++i) {
    labels.push_back(i % 2);
    good.push_back(i % 2 == 0 ? -1.0 + 0.001 * i : 1.0 + 0.001 * i);
    noise.push_back(0.001 * ((i * 37) % 100));
  }
  const double mi_good = feat::mutual_information(good, labels);
  const double mi_noise = feat::mutual_information(noise, labels);
  EXPECT_GT(mi_good, 0.9);
  EXPECT_LT(mi_noise, 0.1);
  EXPECT_GT(mi_good, mi_noise);
}

TEST(MutualInfo, NonNegative) {
  std::vector<double> f = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> y = {0, 1, 0, 1, 0, 1, 0, 1};
  EXPECT_GE(feat::mutual_information(f, y), 0.0);
}

// --- architecture characterization by microbenchmark ---------------------

TEST(ArchProbe, RecoversCacheCapacitiesExactly) {
  const auto p = feat::probe_architecture(sim::amd_like());
  EXPECT_EQ(p.l1_capacity, sim::amd_like().l1.size_bytes);
  EXPECT_EQ(p.l2_capacity, sim::amd_like().l2.size_bytes);
}

TEST(ArchProbe, RecoversMispredictPenalty) {
  const auto p1 = feat::probe_architecture(sim::amd_like());
  EXPECT_NEAR(p1.mispredict_penalty, sim::amd_like().mispredict_penalty, 1.5);
  const auto p2 = feat::probe_architecture(sim::c6713_like());
  EXPECT_NEAR(p2.mispredict_penalty, sim::c6713_like().mispredict_penalty,
              1.5);
}

TEST(ArchProbe, LatencyPlateausAreOrdered) {
  for (const auto& cfg : {sim::amd_like(), sim::c6713_like()}) {
    const auto p = feat::probe_architecture(cfg);
    EXPECT_LT(p.l1_latency, p.l2_latency) << cfg.name;
    EXPECT_LT(p.l2_latency, p.mem_latency) << cfg.name;
    // Measured load-to-use latency tracks the configured hierarchy within
    // loop-overhead slack.
    EXPECT_NEAR(p.mem_latency,
                cfg.l1.hit_latency + cfg.l2.hit_latency + cfg.mem_latency,
                20.0)
        << cfg.name;
  }
}

TEST(ArchProbe, DistinguishesMachines) {
  const auto amd = feat::probe_architecture(sim::amd_like());
  const auto dsp = feat::probe_architecture(sim::c6713_like());
  EXPECT_NE(amd.to_features(), dsp.to_features());
  EXPECT_GT(amd.mem_latency, dsp.mem_latency);  // DRAM gap differs
  EXPECT_GT(dsp.l2_capacity, amd.l2_capacity);
}

TEST(ArchProbe, FeatureVectorShape) {
  const auto p = feat::probe_architecture(sim::amd_like());
  EXPECT_EQ(p.to_features().size(), feat::ArchProfile::feature_names().size());
  for (double v : p.to_features()) {
    EXPECT_TRUE(std::isfinite(v));
    EXPECT_GE(v, 0.0);
  }
}

}  // namespace
