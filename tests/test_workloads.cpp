// Workload suite validation: every program verifies, runs, and returns
// its golden checksum; kernels match their kernel checksums; the
// memory-bound/compute-bound poles show the expected counter signatures.
#include <gtest/gtest.h>

#include "ir/verifier.hpp"
#include "sim/interpreter.hpp"
#include "workloads/workloads.hpp"

namespace {

using namespace ilc;

class WorkloadTest : public ::testing::TestWithParam<std::string> {};

TEST_P(WorkloadTest, VerifiesAndMatchesGolden) {
  wl::Workload w = wl::make_workload(GetParam());
  EXPECT_EQ(ir::verify(w.module), "");
  sim::Simulator s(w.module, sim::amd_like());
  const sim::RunResult r = s.run();
  EXPECT_EQ(r.ret, w.expected_checksum) << w.name;
  EXPECT_GT(r.instructions, 1000u) << "workload too trivial";
  EXPECT_GT(r.cycles, r.instructions / 4) << "cycle model implausible";
}

TEST_P(WorkloadTest, DeterministicAcrossSimulators) {
  wl::Workload w = wl::make_workload(GetParam());
  sim::Simulator s1(w.module, sim::amd_like());
  sim::Simulator s2(w.module, sim::amd_like());
  const auto r1 = s1.run();
  const auto r2 = s2.run();
  EXPECT_EQ(r1.ret, r2.ret);
  EXPECT_EQ(r1.cycles, r2.cycles);
  EXPECT_EQ(r1.counters, r2.counters);
}

TEST_P(WorkloadTest, RunsOnBothMachines) {
  wl::Workload w = wl::make_workload(GetParam());
  sim::Simulator dsp(w.module, sim::c6713_like());
  EXPECT_EQ(dsp.run().ret, w.expected_checksum);
}

TEST_P(WorkloadTest, KernelChecksumMatches) {
  wl::Workload w = wl::make_workload(GetParam());
  if (w.kernel.empty()) GTEST_SKIP() << "no kernel";
  sim::Simulator s(w.module, sim::amd_like());
  if (!w.kernel_setup.empty()) s.call(w.kernel_setup);
  std::int64_t sum = 0;
  for (std::int64_t i = 0; i < w.kernel_items; ++i) {
    sum = (sum + s.call(w.kernel, {i}).ret) & 0x7fffffff;
  }
  EXPECT_EQ(sum, w.kernel_checksum) << w.name;
}

INSTANTIATE_TEST_SUITE_P(Suite, WorkloadTest,
                         ::testing::ValuesIn(wl::workload_names()),
                         [](const auto& info) { return info.param; });

TEST(SuiteShape, McfIsTheMemoryBoundOutlier) {
  // Fig. 3's premise: mcf's per-instruction memory-miss counters tower
  // over the suite average.
  double mcf_l2_rate = 0;
  std::vector<double> rates;
  for (const auto& name : wl::workload_names()) {
    wl::Workload w = wl::make_workload(name);
    sim::Simulator s(w.module, sim::amd_like());
    const auto r = s.run();
    const double rate = static_cast<double>(r.counters[sim::L2_TCM]) /
                        static_cast<double>(r.counters[sim::TOT_INS]);
    if (name == "mcf_lite") mcf_l2_rate = rate;
    rates.push_back(rate);
  }
  double avg = 0;
  for (double x : rates) avg += x;
  avg /= static_cast<double>(rates.size());
  EXPECT_GT(mcf_l2_rate, 3.0 * avg)
      << "mcf_lite should be a strong L2-miss outlier";
}

TEST(SuiteShape, ShaLiteIsComputeBound) {
  wl::Workload w = wl::make_workload("sha_lite");
  sim::Simulator s(w.module, sim::amd_like());
  const auto r = s.run();
  const double miss_rate = static_cast<double>(r.counters[sim::L1_TCM]) /
                           static_cast<double>(r.counters[sim::TOT_INS]);
  EXPECT_LT(miss_rate, 0.01);
}

}  // namespace
