// Simulator unit tests: cache behaviour, branch predictor, interpreter
// semantics (arithmetic, memory, calls, traps), timing-model monotonicity,
// and counter accounting.
#include <gtest/gtest.h>

#include "ir/builder.hpp"
#include "support/assert.hpp"
#include "sim/branch_predictor.hpp"
#include "sim/cache.hpp"
#include "sim/interpreter.hpp"
#include "workloads/workloads.hpp"

namespace {

using namespace ilc;
using namespace ilc::ir;

// --- cache -------------------------------------------------------------

TEST(Cache, HitsAfterFill) {
  sim::Cache c({1024, 64, 2, 1});
  EXPECT_FALSE(c.access(0));
  EXPECT_TRUE(c.access(0));
  EXPECT_TRUE(c.access(63));   // same line
  EXPECT_FALSE(c.access(64));  // next line
}

TEST(Cache, LruEvictionOrder) {
  // 2-way, 2 sets of 64B lines: lines 0,128,256 map to set 0.
  sim::Cache c({256, 64, 2, 1});
  EXPECT_FALSE(c.access(0));
  EXPECT_FALSE(c.access(128));
  EXPECT_TRUE(c.access(0));     // refresh line 0 -> 128 is now LRU
  EXPECT_FALSE(c.access(256));  // evicts 128
  EXPECT_TRUE(c.access(0));
  EXPECT_FALSE(c.access(128));  // was evicted
}

TEST(Cache, ClearColdsEverything) {
  sim::Cache c({256, 64, 2, 1});
  c.access(0);
  c.clear();
  EXPECT_FALSE(c.access(0));
}

TEST(Cache, RejectsNonPowerOfTwoSets) {
  EXPECT_THROW(sim::Cache({192, 64, 1, 1}), support::CheckError);
}

// --- branch predictor --------------------------------------------------

TEST(Bpred, StaticPredictsBackwardTaken) {
  sim::BranchPredictor p(0);
  EXPECT_TRUE(p.predict(1, true));
  EXPECT_FALSE(p.predict(1, false));
}

TEST(Bpred, DynamicLearnsBias) {
  sim::BranchPredictor p(256);
  for (int i = 0; i < 8; ++i) p.update(42, false);
  EXPECT_FALSE(p.predict(42, true));
  for (int i = 0; i < 8; ++i) p.update(42, true);
  EXPECT_TRUE(p.predict(42, true));
}

// --- interpreter semantics ----------------------------------------------

Module arith_module(std::int64_t a, std::int64_t bval, Opcode op) {
  Module m;
  FunctionBuilder b(m, "main", 0);
  Reg x = b.imm(a);
  Reg y = b.imm(bval);
  b.ret(b.binop(op, x, y));
  b.finish();
  return m;
}

TEST(Interp, BasicArithmetic) {
  auto run = [](std::int64_t a, std::int64_t b, Opcode op) {
    Module m = arith_module(a, b, op);
    sim::Simulator s(m, sim::amd_like());
    return s.run().ret;
  };
  EXPECT_EQ(run(6, 7, Opcode::Mul), 42);
  EXPECT_EQ(run(7, 2, Opcode::Div), 3);
  EXPECT_EQ(run(-7, 2, Opcode::Div), -3);  // C-style truncation
  EXPECT_EQ(run(7, 0, Opcode::Div), 0);    // defined
  EXPECT_EQ(run(1, 62, Opcode::Shl), 1LL << 62);
  EXPECT_EQ(run(5, 9, Opcode::Min), 5);
}

TEST(Interp, NarrowLoadsSignExtend) {
  Module m;
  Global g;
  g.name = "buf";
  g.elem_width = 2;
  g.count = 1;
  g.init = {-5};
  const GlobalId buf = m.add_global(g);
  FunctionBuilder b(m, "main", 0);
  b.ret(b.load(b.global_addr(buf), 0, MemWidth::W2));
  b.finish();
  sim::Simulator s(m, sim::amd_like());
  EXPECT_EQ(s.run().ret, -5);
}

TEST(Interp, FrameMemoryIsPerActivation) {
  Module m;
  // leaf(x): spills x to its frame and reloads it.
  FuncId leaf;
  {
    FunctionBuilder b(m, "leaf", 1, 16);
    Reg slot = b.frame_addr(0);
    b.store(slot, 0, b.arg(0), MemWidth::W8);
    b.ret(b.load(slot, 0, MemWidth::W8));
    leaf = b.finish();
  }
  {
    FunctionBuilder b(m, "main", 0, 16);
    Reg slot = b.frame_addr(0);
    b.store(slot, 0, b.imm(111), MemWidth::W8);
    Reg r = b.call(leaf, {b.imm(42)});
    Reg mine = b.load(slot, 0, MemWidth::W8);  // must be untouched
    b.ret(b.add(r, mine));
    b.finish();
  }
  sim::Simulator s(m, sim::amd_like());
  EXPECT_EQ(s.run().ret, 153);
}

TEST(Interp, RecursionWorks) {
  Module m;
  // fib(n) with recursion: needs a forward-declared self id — build with
  // the function calling id 0 (itself, as the first function added).
  FunctionBuilder b(m, "fib", 1);
  Reg n = b.arg(0);
  BlockId base = b.new_block(), rec = b.new_block();
  b.br(b.cmp_lt_i(n, 2), base, rec);
  b.switch_to(base);
  b.ret(n);
  b.switch_to(rec);
  Reg f1 = b.call(0, {b.sub_i(n, 1)});
  Reg f2 = b.call(0, {b.sub_i(n, 2)});
  b.ret(b.add(f1, f2));
  b.finish();
  sim::Simulator s(m, sim::amd_like());
  EXPECT_EQ(s.call("fib", {10}).ret, 55);
}

TEST(Interp, NullDereferenceTraps) {
  Module m;
  FunctionBuilder b(m, "main", 0);
  Reg null = b.imm(0);
  b.ret(b.load(null, 0, MemWidth::W8));
  b.finish();
  sim::Simulator s(m, sim::amd_like());
  EXPECT_THROW(s.run(), sim::TrapError);
}

TEST(Interp, OutOfBoundsTraps) {
  Module m;
  FunctionBuilder b(m, "main", 0);
  Reg big = b.imm(1LL << 40);
  b.ret(b.load(big, 0, MemWidth::W8));
  b.finish();
  sim::Simulator s(m, sim::amd_like());
  EXPECT_THROW(s.run(), sim::TrapError);
}

TEST(Interp, InfiniteLoopHitsBudget) {
  Module m;
  FunctionBuilder b(m, "main", 0);
  BlockId spin = b.new_block();
  b.jump(spin);
  b.switch_to(spin);
  b.jump(spin);
  b.finish();
  sim::MachineConfig cfg = sim::amd_like();
  cfg.max_instructions = 10000;
  sim::Simulator s(m, cfg);
  EXPECT_THROW(s.run(), sim::TrapError);
}

TEST(Interp, PrefetchIsNonBindingAndSafe) {
  Module m;
  Global g;
  g.name = "buf";
  g.elem_width = 8;
  g.count = 4;
  g.init = {5, 6, 7, 8};
  const GlobalId buf = m.add_global(g);
  FunctionBuilder b(m, "main", 0);
  Reg base = b.global_addr(buf);
  b.prefetch(base, 0);
  b.prefetch(base, 1 << 30);  // far out of range: dropped, no trap
  b.ret(b.load(base, 8, MemWidth::W8));
  b.finish();
  sim::Simulator s(m, sim::amd_like());
  EXPECT_EQ(s.run().ret, 6);
}

// --- timing / counters ---------------------------------------------------

TEST(Timing, DependentChainSlowerThanIndependent) {
  // Two programs with the same instruction count; one is a serial
  // multiply chain, the other independent multiplies.
  Module dep;
  {
    FunctionBuilder b(dep, "main", 0);
    Reg x = b.imm(3);
    for (int i = 0; i < 32; ++i) x = b.mul(x, x);
    b.ret(x);
    b.finish();
  }
  Module indep;
  {
    FunctionBuilder b(indep, "main", 0);
    Reg first = b.imm(3);
    Reg acc = first;
    std::vector<Reg> rs;
    for (int i = 0; i < 32; ++i) rs.push_back(b.mul(first, first));
    for (Reg r : rs) acc = r;
    b.ret(acc);
    b.finish();
  }
  sim::Simulator s1(dep, sim::amd_like());
  sim::Simulator s2(indep, sim::amd_like());
  EXPECT_GT(s1.run().cycles, s2.run().cycles);
}

TEST(Timing, CacheMissesCostCycles) {
  auto strided_walk = [](int stride) {
    Module m;
    Global g;
    g.name = "buf";
    g.elem_width = 8;
    g.count = 8192;
    const GlobalId buf = m.add_global(g);
    FunctionBuilder b(m, "main", 0);
    Reg base = b.global_addr(buf);
    Reg acc = b.fresh();
    b.imm_to(acc, 0);
    Reg n = b.imm(512);
    wl::Workload dummy;  // unused; keeps includes honest
    (void)dummy;
    // simple loop
    Reg i = b.fresh();
    b.imm_to(i, 0);
    BlockId head = b.new_block(), body = b.new_block(), exit = b.new_block();
    b.jump(head);
    b.switch_to(head);
    b.br(b.cmp_lt(i, n), body, exit);
    b.switch_to(body);
    Reg off = b.mul_i(i, stride * 8);
    b.mov_to(acc, b.add(acc, b.load(b.add(base, off), 0, MemWidth::W8)));
    b.mov_to(i, b.add_i(i, 1));
    b.jump(head);
    b.switch_to(exit);
    b.ret(acc);
    b.finish();
    sim::Simulator s(m, sim::amd_like());
    return s.run();
  };
  const auto unit = strided_walk(1);
  const auto sparse = strided_walk(16);  // one access per line or worse
  EXPECT_GT(sparse.counters[sim::L1_TCM], 2 * unit.counters[sim::L1_TCM]);
  EXPECT_GT(sparse.cycles, unit.cycles);
}

TEST(Counters, InstructionAndMemoryAccounting) {
  Module m;
  Global g;
  g.name = "buf";
  g.elem_width = 8;
  g.count = 2;
  g.init = {7, 0};
  const GlobalId buf = m.add_global(g);
  FunctionBuilder b(m, "main", 0);
  Reg base = b.global_addr(buf);
  Reg v = b.load(base, 0, MemWidth::W8);
  b.store(base, 8, v, MemWidth::W8);
  b.ret(v);
  b.finish();
  sim::Simulator s(m, sim::amd_like());
  const auto r = s.run();
  EXPECT_EQ(r.counters[sim::LD_INS], 1u);
  EXPECT_EQ(r.counters[sim::SR_INS], 1u);
  EXPECT_EQ(r.counters[sim::L1_TCA], 2u);
  EXPECT_EQ(r.counters[sim::TOT_INS], r.instructions);
  EXPECT_EQ(r.ret, 7);
}

TEST(Counters, CumulativeAcrossCalls) {
  wl::Workload w = wl::make_workload("adpcm");
  sim::Simulator s(w.module, sim::amd_like());
  s.run();
  const auto after_one = s.counters()[sim::TOT_INS];
  s.run();
  EXPECT_GT(s.counters()[sim::TOT_INS], after_one);
  s.reset_counters();
  EXPECT_EQ(s.counters()[sim::TOT_INS], 0u);
}

TEST(Counters, NameRoundTrip) {
  for (unsigned i = 0; i < sim::kNumCounters; ++i) {
    const auto c = static_cast<sim::Counter>(i);
    EXPECT_EQ(sim::counter_from_name(sim::counter_name(c)), c);
  }
  EXPECT_EQ(sim::counter_from_name("NOPE"), sim::kNumCounters);
}

}  // namespace
