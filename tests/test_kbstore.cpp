// kbstore tests: codec and framing round trips, crash recovery under
// fault injection (torn WAL tails, bit-flipped payloads, corrupt
// snapshots, stale WALs), group-commit acknowledgement semantics,
// compaction, the legacy CSV bridge, and concurrent writers/readers.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <limits>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "kbstore/log_format.hpp"
#include "kbstore/record_codec.hpp"
#include "kbstore/store.hpp"
#include "support/failpoint.hpp"

namespace {

namespace fs = std::filesystem;

using namespace ilc;
using kbstore::LogRecord;
using kbstore::Op;
using kbstore::Store;

kb::ExperimentRecord sample(const std::string& program, std::uint64_t cycles,
                            const std::string& kind = "sequence") {
  kb::ExperimentRecord r;
  r.program = program;
  r.machine = "amd-like";
  r.kind = kind;
  r.config = "constprop,dce,licm";
  r.cycles = cycles;
  r.code_size = 100;
  r.instructions = cycles / 2;
  r.counters[sim::L1_TCM] = 7;
  r.static_features = {1.5, -2.25, 0.0};
  r.dynamic_features = {3.0, 0.125};
  return r;
}

/// A store directory under the test working dir, wiped on entry and exit.
struct TempStoreDir {
  explicit TempStoreDir(const char* name) : path(name) { fs::remove_all(path); }
  ~TempStoreDir() { fs::remove_all(path); }
  std::string wal() const { return path + "/wal.ilc"; }
  std::string snapshot() const { return path + "/snapshot.ilc"; }
  std::string path;
};

std::string read_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(f), {});
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// Byte offsets of each frame (start of its length prefix) in a log image.
std::vector<std::size_t> frame_offsets(const std::string& bytes) {
  std::vector<std::size_t> out;
  std::size_t pos = kbstore::kHeaderSize;
  while (pos + kbstore::kFrameOverhead <= bytes.size()) {
    const auto* p = reinterpret_cast<const unsigned char*>(bytes.data() + pos);
    const std::uint32_t len = static_cast<std::uint32_t>(p[0]) |
                              (static_cast<std::uint32_t>(p[1]) << 8) |
                              (static_cast<std::uint32_t>(p[2]) << 16) |
                              (static_cast<std::uint32_t>(p[3]) << 24);
    out.push_back(pos);
    pos += kbstore::kFrameOverhead + len;
  }
  return out;
}

kbstore::Options every_append() {
  kbstore::Options opts;
  opts.flush = kbstore::Options::Flush::EveryAppend;
  opts.background_compaction = false;
  return opts;
}

// --- codec ---------------------------------------------------------------

TEST(KbStoreCodec, RoundTripsEveryField) {
  LogRecord in;
  in.op = Op::Upsert;
  in.rec = sample("prog,with \"csv\" hazards", 12345, "flags");
  const std::string payload = kbstore::encode_record(in);
  const auto out = kbstore::decode_record(payload);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->op, Op::Upsert);
  EXPECT_EQ(out->rec.program, in.rec.program);
  EXPECT_EQ(out->rec.machine, in.rec.machine);
  EXPECT_EQ(out->rec.kind, in.rec.kind);
  EXPECT_EQ(out->rec.config, in.rec.config);
  EXPECT_EQ(out->rec.cycles, in.rec.cycles);
  EXPECT_EQ(out->rec.code_size, in.rec.code_size);
  EXPECT_EQ(out->rec.instructions, in.rec.instructions);
  EXPECT_EQ(out->rec.counters, in.rec.counters);
  EXPECT_EQ(out->rec.static_features, in.rec.static_features);
  EXPECT_EQ(out->rec.dynamic_features, in.rec.dynamic_features);
}

TEST(KbStoreCodec, RejectsTruncationAtEveryLength) {
  LogRecord in;
  in.rec = sample("p", 42);
  const std::string payload = kbstore::encode_record(in);
  for (std::size_t n = 0; n < payload.size(); ++n)
    EXPECT_FALSE(kbstore::decode_record(payload.substr(0, n)).has_value())
        << "prefix of " << n << " bytes decoded";
  EXPECT_FALSE(kbstore::decode_record(payload + 'x').has_value());
  EXPECT_TRUE(kbstore::decode_record(payload).has_value());
}

TEST(KbStoreLog, ScanStopsAtFirstBadFrameAndCountsGoodBytes) {
  std::string image = kbstore::log_header(kbstore::kWalType, 7);
  LogRecord a, b;
  a.rec = sample("a", 1);
  b.rec = sample("b", 2);
  kbstore::append_frame(image, kbstore::encode_record(a));
  const std::size_t after_a = image.size();
  kbstore::append_frame(image, kbstore::encode_record(b));

  const auto clean = kbstore::scan_log(image, kbstore::kWalType);
  EXPECT_TRUE(clean.header_ok);
  EXPECT_TRUE(clean.clean);
  EXPECT_EQ(clean.generation, 7u);
  ASSERT_EQ(clean.records.size(), 2u);
  EXPECT_EQ(clean.records[1].rec.program, "b");

  // Flip one payload byte of the second frame: scan keeps frame one only.
  std::string flipped = image;
  flipped[after_a + kbstore::kFrameOverhead + 3] ^= 0x01;
  const auto scan = kbstore::scan_log(flipped, kbstore::kWalType);
  EXPECT_TRUE(scan.header_ok);
  EXPECT_FALSE(scan.clean);
  EXPECT_EQ(scan.good_bytes, after_a);
  ASSERT_EQ(scan.records.size(), 1u);
  EXPECT_EQ(scan.records[0].rec.program, "a");

  // Wrong file type: header rejected, nothing decoded.
  EXPECT_FALSE(kbstore::scan_log(image, kbstore::kSnapshotType).header_ok);
}

// --- basic store semantics ----------------------------------------------

TEST(KbStore, AppendAccumulatesAndFindReturnsFirst) {
  TempStoreDir dir("kbstore_test_basic");
  auto store = Store::open(dir.path, every_append());
  ASSERT_NE(store, nullptr);
  store->append(sample("a", 100));
  store->append(sample("a", 90));
  store->append(sample("b", 50));
  EXPECT_EQ(store->size(), 3u);

  const auto hit = store->find("a", "amd-like", "sequence");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->cycles, 100u);  // first record under the key
  EXPECT_FALSE(store->find("c", "amd-like", "sequence").has_value());

  const auto recs = store->records();
  ASSERT_EQ(recs.size(), 3u);
  EXPECT_EQ(recs[0].program, "a");
  EXPECT_EQ(recs[1].cycles, 90u);
  EXPECT_EQ(recs[2].program, "b");
}

TEST(KbStore, UpsertReplacesFirstAndEraseDropsKey) {
  TempStoreDir dir("kbstore_test_upsert");
  auto store = Store::open(dir.path, every_append());
  ASSERT_NE(store, nullptr);
  EXPECT_FALSE(store->upsert(sample("a", 100)));  // fresh key: append
  store->append(sample("a", 90));
  EXPECT_TRUE(store->upsert(sample("a", 70)));  // replaces the 100 record
  EXPECT_EQ(store->size(), 2u);
  EXPECT_EQ(store->find("a", "amd-like", "sequence")->cycles, 70u);

  EXPECT_TRUE(store->erase("a", "amd-like", "sequence"));
  EXPECT_FALSE(store->erase("a", "amd-like", "sequence"));
  EXPECT_EQ(store->size(), 0u);
}

TEST(KbStore, CleanReopenRecoversEverythingInInsertionOrder) {
  TempStoreDir dir("kbstore_test_reopen");
  {
    auto store = Store::open(dir.path, every_append());
    ASSERT_NE(store, nullptr);
    for (int i = 0; i < 20; ++i)
      store->append(sample("p" + std::to_string(i % 4), 1000 + i));
  }
  kbstore::RecoveryInfo info;
  auto store = Store::open(dir.path, every_append(), &info);
  ASSERT_NE(store, nullptr);
  EXPECT_EQ(info.wal_records, 20u);
  EXPECT_FALSE(info.torn_tail);
  const auto recs = store->records();
  ASSERT_EQ(recs.size(), 20u);
  for (int i = 0; i < 20; ++i)
    EXPECT_EQ(recs[static_cast<std::size_t>(i)].cycles,
              static_cast<std::uint64_t>(1000 + i));
}

// --- crash recovery under fault injection -------------------------------

// Truncate the WAL inside every frame in turn: recovery must keep exactly
// the records before the cut and stay usable afterwards.
TEST(KbStore, TruncatedWalTailRecoversPrefixAtEveryCut) {
  TempStoreDir dir("kbstore_test_trunc");
  constexpr std::size_t kRecords = 5;
  {
    auto store = Store::open(dir.path, every_append());
    ASSERT_NE(store, nullptr);
    for (std::size_t i = 0; i < kRecords; ++i)
      store->append(sample("p", 100 + i));
  }
  const std::string wal = read_file(dir.wal());
  const std::vector<std::size_t> offsets = frame_offsets(wal);
  ASSERT_EQ(offsets.size(), kRecords);

  for (std::size_t k = 0; k < kRecords; ++k) {
    // Cut mid-frame k: 3 bytes past its length prefix.
    write_file(dir.wal(), wal.substr(0, offsets[k] + 3));
    kbstore::RecoveryInfo info;
    auto store = Store::open(dir.path, every_append(), &info);
    ASSERT_NE(store, nullptr) << "cut in frame " << k;
    EXPECT_EQ(store->size(), k);
    EXPECT_EQ(info.wal_records, k);
    EXPECT_TRUE(info.torn_tail);
    EXPECT_EQ(info.torn_bytes, 3u);

    // The torn tail was truncated away: appending and reopening works.
    store->append(sample("q", 999));
    store.reset();
    auto again = Store::open(dir.path, every_append(), &info);
    ASSERT_NE(again, nullptr);
    EXPECT_EQ(again->size(), k + 1);
    EXPECT_FALSE(info.torn_tail);
    EXPECT_EQ(again->records().back().cycles, 999u);
  }
}

TEST(KbStore, BitFlippedPayloadDropsFromThatFrameOn) {
  TempStoreDir dir("kbstore_test_flip");
  {
    auto store = Store::open(dir.path, every_append());
    ASSERT_NE(store, nullptr);
    for (std::size_t i = 0; i < 4; ++i) store->append(sample("p", 100 + i));
  }
  std::string wal = read_file(dir.wal());
  const std::vector<std::size_t> offsets = frame_offsets(wal);
  ASSERT_EQ(offsets.size(), 4u);

  // Flip a payload byte in frame 2: frames 0 and 1 survive, 2 and 3 are
  // discarded (the log has no way to resynchronize past a bad frame).
  wal[offsets[2] + kbstore::kFrameOverhead + 5] ^= 0x40;
  write_file(dir.wal(), wal);

  kbstore::RecoveryInfo info;
  auto store = Store::open(dir.path, every_append(), &info);
  ASSERT_NE(store, nullptr);
  EXPECT_EQ(store->size(), 2u);
  EXPECT_TRUE(info.torn_tail);
  const auto recs = store->records();
  ASSERT_EQ(recs.size(), 2u);
  EXPECT_EQ(recs[0].cycles, 100u);
  EXPECT_EQ(recs[1].cycles, 101u);
}

TEST(KbStore, CorruptSnapshotRefusesToOpen) {
  TempStoreDir dir("kbstore_test_badsnap");
  {
    auto store = Store::open(dir.path, every_append());
    ASSERT_NE(store, nullptr);
    for (std::size_t i = 0; i < 8; ++i) store->append(sample("p", 100 + i));
    ASSERT_TRUE(store->compact());
  }
  // Snapshots are written atomically, so damage is real corruption — the
  // store must refuse rather than silently serve a partial baseline.
  std::string snap = read_file(dir.snapshot());
  ASSERT_GT(snap.size(), kbstore::kHeaderSize + 10);
  snap[kbstore::kHeaderSize + 10] ^= 0x01;
  write_file(dir.snapshot(), snap);
  EXPECT_EQ(Store::open(dir.path, every_append()), nullptr);
}

// A crash between snapshot publish and WAL truncation leaves a WAL whose
// generation the snapshot already covers; replaying it would double-apply
// every append. Recovery must discard it as stale.
TEST(KbStore, StaleWalAfterCompactionCrashIsDiscarded) {
  TempStoreDir dir("kbstore_test_stale");
  {
    auto store = Store::open(dir.path, every_append());
    ASSERT_NE(store, nullptr);
    for (std::size_t i = 0; i < 6; ++i) store->append(sample("p", 100 + i));
  }
  const std::string old_wal = read_file(dir.wal());  // generation 1
  {
    auto store = Store::open(dir.path, every_append());
    ASSERT_NE(store, nullptr);
    ASSERT_TRUE(store->compact());  // snapshot gen 1, fresh WAL gen 2
  }
  write_file(dir.wal(), old_wal);  // the crash: truncation never happened

  kbstore::RecoveryInfo info;
  auto store = Store::open(dir.path, every_append(), &info);
  ASSERT_NE(store, nullptr);
  EXPECT_TRUE(info.stale_wal);
  EXPECT_EQ(info.snapshot_records, 6u);
  EXPECT_EQ(info.wal_records, 0u);
  EXPECT_EQ(store->size(), 6u);  // no double-apply
}

// --- acknowledgement semantics ------------------------------------------

// Only flushed writes are acknowledged. Under Manual flush a crash before
// sync() loses the tail; after sync() it must survive. The "crash" copies
// the live files into a second directory and recovers there.
TEST(KbStore, SyncIsTheDurabilityBarrier) {
  TempStoreDir dir("kbstore_test_ack");
  TempStoreDir crash("kbstore_test_ack_crash");
  kbstore::Options opts;
  opts.flush = kbstore::Options::Flush::Manual;
  opts.background_compaction = false;

  auto store = Store::open(dir.path, opts);
  ASSERT_NE(store, nullptr);
  store->append(sample("a", 100));

  fs::create_directories(crash.path);
  fs::copy_file(dir.wal(), crash.wal(), fs::copy_options::overwrite_existing);
  {
    auto replica = Store::open(crash.path, every_append());
    ASSERT_NE(replica, nullptr);
    EXPECT_EQ(replica->size(), 0u);  // unsynced: not yet acknowledged
  }

  ASSERT_TRUE(store->sync());
  fs::copy_file(dir.wal(), crash.wal(), fs::copy_options::overwrite_existing);
  {
    auto replica = Store::open(crash.path, every_append());
    ASSERT_NE(replica, nullptr);
    EXPECT_EQ(replica->size(), 1u);  // synced: must survive the crash
  }
}

TEST(KbStore, BatchedFlushCommitsAtBatchBoundary) {
  TempStoreDir dir("kbstore_test_batch");
  TempStoreDir crash("kbstore_test_batch_crash");
  kbstore::Options opts;
  opts.flush = kbstore::Options::Flush::Batched;
  opts.batch_appends = 4;
  opts.background_compaction = false;

  auto store = Store::open(dir.path, opts);
  ASSERT_NE(store, nullptr);
  for (std::size_t i = 0; i < 6; ++i) store->append(sample("p", 100 + i));

  fs::create_directories(crash.path);
  fs::copy_file(dir.wal(), crash.wal(), fs::copy_options::overwrite_existing);
  auto replica = Store::open(crash.path, every_append());
  ASSERT_NE(replica, nullptr);
  EXPECT_EQ(replica->size(), 4u);  // one full batch flushed, tail pending
}

// Injected WAL faults behave like real I/O errors: a failing flush leaves
// the pending batch buffered (sync() reports it honestly), a failing
// append surfaces as an exception, and clearing the fault lets the same
// bytes commit — no data is lost to a transient fault.
TEST(KbStore, InjectedWalFaultsFailCleanlyAndClear) {
  TempStoreDir dir("kbstore_test_failpoint");
  kbstore::Options opts;
  opts.flush = kbstore::Options::Flush::Manual;
  opts.background_compaction = false;

  auto store = Store::open(dir.path, opts);
  ASSERT_NE(store, nullptr);
  store->append(sample("a", 100));

  auto& fp = support::Failpoints::instance();
  ASSERT_TRUE(fp.configure("kbstore.wal_flush=error"));
  EXPECT_FALSE(store->sync());
  EXPECT_EQ(store->size(), 1u);  // index still serves the un-flushed write

  ASSERT_TRUE(fp.configure("kbstore.wal_append=throw"));
  EXPECT_THROW(store->append(sample("b", 200)), support::FailpointError);
  EXPECT_EQ(store->size(), 1u);  // failed append never reached the index

  fp.unset_all();
  EXPECT_TRUE(store->sync());  // the buffered batch commits after all
  store->append(sample("b", 200));
  ASSERT_TRUE(store->sync());
  EXPECT_EQ(store->size(), 2u);
}

// --- compaction ----------------------------------------------------------

TEST(KbStore, CompactionPreservesLiveSetAndOrderAcrossReopen) {
  TempStoreDir dir("kbstore_test_compact");
  kbstore::Options opts = every_append();
  {
    auto store = Store::open(dir.path, opts);
    ASSERT_NE(store, nullptr);
    for (std::size_t i = 0; i < 10; ++i)
      store->append(sample("p" + std::to_string(i % 3), 100 + i));
    for (std::size_t i = 0; i < 50; ++i)
      store->upsert(sample("hot", 1000 - i, "flags"));
    EXPECT_GT(store->stats().dead, 0u);

    ASSERT_TRUE(store->compact());
    const auto stats = store->stats();
    EXPECT_EQ(stats.dead, 0u);
    EXPECT_EQ(stats.live, 11u);
    EXPECT_EQ(stats.compactions, 1u);
  }
  kbstore::RecoveryInfo info;
  auto store = Store::open(dir.path, opts, &info);
  ASSERT_NE(store, nullptr);
  EXPECT_EQ(info.snapshot_records, 11u);
  EXPECT_EQ(info.wal_records, 0u);
  const auto recs = store->records();
  ASSERT_EQ(recs.size(), 11u);
  for (std::size_t i = 0; i < 10; ++i)  // original insertion order intact
    EXPECT_EQ(recs[i].cycles, 100 + i);
  EXPECT_EQ(recs[10].cycles, 951u);  // the surviving upsert
}

TEST(KbStore, BackgroundCompactionFiresOnDeadRatio) {
  TempStoreDir dir("kbstore_test_bgcompact");
  kbstore::Options opts;
  opts.flush = kbstore::Options::Flush::EveryAppend;
  opts.compact_min_dead = 8;
  opts.compact_dead_ratio = 0.5;
  opts.background_compaction = true;

  auto store = Store::open(dir.path, opts);
  ASSERT_NE(store, nullptr);
  store->append(sample("base", 1));
  for (std::size_t i = 0; i < 200; ++i)
    store->upsert(sample("hot", 1000 + i, "flags"));

  bool compacted = false;
  for (int tries = 0; tries < 200 && !compacted; ++tries) {
    compacted = store->stats().compactions > 0;
    if (!compacted) std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_TRUE(compacted);
  EXPECT_EQ(store->size(), 2u);
  EXPECT_EQ(store->find("hot", "amd-like", "flags")->cycles, 1199u);
}

// --- legacy CSV bridge ---------------------------------------------------

TEST(KbStore, CsvImportExportRoundTripsExactly) {
  TempStoreDir dir("kbstore_test_csv");
  kb::KnowledgeBase base;
  base.add(sample("prog_one", 1234));
  base.add(sample("prog_one", 999));  // duplicate key must survive
  base.add(sample("prog,two \"quoted\"", 5678, "flags"));

  auto store = Store::open(dir.path, every_append());
  ASSERT_NE(store, nullptr);
  ASSERT_TRUE(store->import_records(base));
  EXPECT_EQ(store->export_kb().serialize(), base.serialize());

  // And the same after crash recovery.
  store.reset();
  store = Store::open(dir.path, every_append());
  ASSERT_NE(store, nullptr);
  EXPECT_EQ(store->export_kb().serialize(), base.serialize());
}

// --- concurrency (run under TSan in CI) ----------------------------------

TEST(KbStore, ConcurrentWritersAndReadersKeepPerKeyOrder) {
  TempStoreDir dir("kbstore_test_concurrent");
  kbstore::Options opts;
  opts.flush = kbstore::Options::Flush::Batched;
  opts.batch_appends = 16;
  opts.compact_min_dead = 32;
  opts.compact_dead_ratio = 0.25;
  opts.background_compaction = true;  // compaction races with the writers

  constexpr std::size_t kWriters = 4;
  constexpr std::size_t kPerWriter = 150;
  auto store = Store::open(dir.path, opts);
  ASSERT_NE(store, nullptr);

  std::vector<std::thread> threads;
  for (std::size_t w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      const std::string program = "w" + std::to_string(w);
      for (std::size_t i = 0; i < kPerWriter; ++i) {
        store->append(sample(program, i));
        store->upsert(sample(program, i, "flags"));  // churn for compaction
      }
    });
  }
  std::atomic<bool> done{false};
  std::thread reader([&] {
    while (!done.load()) {
      (void)store->find("w0", "amd-like", "sequence");
      (void)store->records();
      (void)store->stats();
    }
  });
  for (auto& t : threads) t.join();
  done.store(true);
  reader.join();
  ASSERT_TRUE(store->sync());

  // Reopen and verify: every writer's appends present, in its own order.
  store.reset();
  store = Store::open(dir.path, every_append());
  ASSERT_NE(store, nullptr);
  EXPECT_EQ(store->size(), kWriters * (kPerWriter + 1));
  const auto recs = store->records();
  for (std::size_t w = 0; w < kWriters; ++w) {
    const std::string program = "w" + std::to_string(w);
    std::uint64_t expect = 0;
    for (const auto& rec : recs) {
      if (rec.program != program || rec.kind != "sequence") continue;
      EXPECT_EQ(rec.cycles, expect++);
    }
    EXPECT_EQ(expect, kPerWriter);
    EXPECT_EQ(store->find(program, "amd-like", "flags")->cycles,
              kPerWriter - 1);
  }
}

// --- codec fuzz (randomized, but seeded: failures reproduce) -------------

kb::ExperimentRecord random_record(std::mt19937_64& rng) {
  auto rand_string = [&rng](std::size_t max_len) {
    std::uniform_int_distribution<std::size_t> len(0, max_len);
    // Full byte range: embedded NULs, newlines, commas, 0xFF — the codec
    // is length-prefixed binary and must not care.
    std::uniform_int_distribution<int> byte(0, 255);
    std::string s(len(rng), '\0');
    for (auto& c : s) c = static_cast<char>(byte(rng));
    return s;
  };
  auto rand_doubles = [&rng](std::size_t max_len) {
    std::uniform_int_distribution<std::size_t> len(0, max_len);
    std::uniform_int_distribution<int> pick(0, 4);
    std::uniform_real_distribution<double> uni(-1e18, 1e18);
    std::vector<double> v(len(rng));
    for (auto& d : v) {
      switch (pick(rng)) {
        case 0: d = uni(rng); break;
        case 1: d = std::numeric_limits<double>::infinity(); break;
        case 2: d = -std::numeric_limits<double>::infinity(); break;
        case 3: d = std::numeric_limits<double>::denorm_min(); break;
        default: d = 0.0; break;
      }
    }
    return v;
  };
  std::uniform_int_distribution<std::uint64_t> u64;
  kb::ExperimentRecord r;
  r.program = rand_string(64);
  r.machine = rand_string(16);
  r.kind = rand_string(16);
  r.config = rand_string(128);
  r.cycles = u64(rng);
  r.code_size = u64(rng);
  r.instructions = u64(rng);
  for (unsigned c = 0; c < sim::kNumCounters; ++c)
    r.counters[static_cast<sim::Counter>(c)] = u64(rng);
  r.static_features = rand_doubles(24);
  r.dynamic_features = rand_doubles(24);
  return r;
}

TEST(KbStoreCodecFuzz, RandomRecordsRoundTripExactly) {
  std::mt19937_64 rng(2008);
  std::uniform_int_distribution<int> op(1, 3);  // Op::Append..Op::Erase
  for (int i = 0; i < 200; ++i) {
    LogRecord in;
    in.op = static_cast<Op>(op(rng));
    in.rec = random_record(rng);
    const std::string payload = kbstore::encode_record(in);
    const auto out = kbstore::decode_record(payload);
    ASSERT_TRUE(out.has_value()) << "iteration " << i;
    EXPECT_EQ(out->op, in.op);
    EXPECT_EQ(out->rec.program, in.rec.program);
    EXPECT_EQ(out->rec.machine, in.rec.machine);
    EXPECT_EQ(out->rec.kind, in.rec.kind);
    if (in.op == Op::Erase) continue;  // tombstones carry only the key
    EXPECT_EQ(out->rec.config, in.rec.config);
    EXPECT_EQ(out->rec.cycles, in.rec.cycles);
    EXPECT_EQ(out->rec.code_size, in.rec.code_size);
    EXPECT_EQ(out->rec.instructions, in.rec.instructions);
    EXPECT_EQ(out->rec.counters, in.rec.counters);
    EXPECT_EQ(out->rec.static_features, in.rec.static_features);
    EXPECT_EQ(out->rec.dynamic_features, in.rec.dynamic_features);
  }
}

TEST(KbStoreCodecFuzz, NaNFeaturesSurviveByBitPattern) {
  LogRecord in;
  in.rec = sample("nan", 1);
  in.rec.static_features = {std::numeric_limits<double>::quiet_NaN(), 1.0};
  const auto out = kbstore::decode_record(kbstore::encode_record(in));
  ASSERT_TRUE(out.has_value());
  ASSERT_EQ(out->rec.static_features.size(), 2u);
  EXPECT_TRUE(std::isnan(out->rec.static_features[0]));
  EXPECT_EQ(out->rec.static_features[1], 1.0);
}

TEST(KbStoreCodecFuzz, RandomRecordsRejectEveryTruncation) {
  std::mt19937_64 rng(42);
  for (int i = 0; i < 25; ++i) {
    LogRecord in;
    in.rec = random_record(rng);
    const std::string payload = kbstore::encode_record(in);
    for (std::size_t n = 0; n < payload.size(); ++n)
      ASSERT_FALSE(kbstore::decode_record(payload.substr(0, n)).has_value())
          << "iteration " << i << ": prefix of " << n << " bytes decoded";
    ASSERT_FALSE(kbstore::decode_record(payload + 'y').has_value())
        << "iteration " << i << ": trailing garbage accepted";
  }
}

TEST(KbStoreCodecFuzz, EveryBitFlipDecodesSanelyOrNotAtAll) {
  // Deterministic single-bit-flip sweep: the decoder must never crash,
  // hang, or return a record that could not have been encoded (a length
  // field pointing past the buffer). A flip may legitimately decode —
  // e.g. inside a feature double — but the string fields must still fit
  // inside the payload that produced them.
  std::mt19937_64 rng(7);
  for (int i = 0; i < 10; ++i) {
    LogRecord in;
    in.rec = random_record(rng);
    const std::string payload = kbstore::encode_record(in);
    for (std::size_t byte = 0; byte < payload.size(); ++byte) {
      for (int bit = 0; bit < 8; ++bit) {
        std::string mut = payload;
        mut[byte] = static_cast<char>(mut[byte] ^ (1 << bit));
        const auto out = kbstore::decode_record(mut);
        if (!out) continue;
        EXPECT_LE(out->rec.program.size() + out->rec.machine.size() +
                      out->rec.kind.size() + out->rec.config.size(),
                  mut.size())
            << "decoded strings larger than the buffer they came from";
      }
    }
  }
}

// --- frame walking + durable position accessors --------------------------

TEST(KbStoreLog, WalkFramesReportsBoundsHealthAndTornTail) {
  std::string image = kbstore::log_header(kbstore::kWalType, 3);
  LogRecord a, b, c;
  a.rec = sample("a", 1);
  b.rec = sample("b", 2);
  b.op = Op::Erase;
  c.rec = sample("c", 3);
  kbstore::append_frame(image, kbstore::encode_record(a));
  kbstore::append_frame(image, kbstore::encode_record(b));
  kbstore::append_frame(image, kbstore::encode_record(c));

  const auto walked = kbstore::walk_frames(image, kbstore::kHeaderSize);
  EXPECT_TRUE(walked.clean);
  EXPECT_EQ(walked.good_bytes, image.size());
  ASSERT_EQ(walked.frames.size(), 3u);
  EXPECT_EQ(walked.frames[0].offset, kbstore::kHeaderSize);
  for (std::size_t i = 1; i < walked.frames.size(); ++i)
    EXPECT_EQ(walked.frames[i].offset, walked.frames[i - 1].end());
  for (const auto& fb : walked.frames) {
    EXPECT_TRUE(fb.crc_ok);
    EXPECT_TRUE(fb.decodable);
  }
  EXPECT_EQ(walked.frames[1].op, Op::Erase);

  // Torn tail: a partial final frame is not reported as a frame at all.
  const auto torn = kbstore::walk_frames(
      std::string_view(image).substr(0, image.size() - 3),
      kbstore::kHeaderSize);
  EXPECT_FALSE(torn.clean);
  ASSERT_EQ(torn.frames.size(), 2u);
  EXPECT_EQ(torn.good_bytes, walked.frames[1].end());

  // Corrupt interior frame: included, flagged, and walking stops there.
  std::string flipped = image;
  flipped[walked.frames[1].offset + kbstore::kFrameOverhead] ^= 0x80;
  const auto bad = kbstore::walk_frames(flipped, kbstore::kHeaderSize);
  EXPECT_FALSE(bad.clean);
  ASSERT_EQ(bad.frames.size(), 2u);
  EXPECT_TRUE(bad.frames[0].crc_ok);
  EXPECT_FALSE(bad.frames[1].crc_ok);
  EXPECT_EQ(bad.good_bytes, walked.frames[0].end());
}

TEST(KbStore, WalPositionTracksDurableFramesAcrossReopenAndCompaction) {
  TempStoreDir dir("kbstore_test_walpos");
  auto store = Store::open(dir.path, every_append());
  ASSERT_NE(store, nullptr);
  const kbstore::WalPosition fresh = store->wal_position();
  EXPECT_EQ(fresh.generation, 1u);
  EXPECT_EQ(fresh.seq, 0u);
  EXPECT_EQ(fresh.chain_crc, 0u);

  store->append(sample("a", 1));
  store->append(sample("b", 2));
  store->upsert(sample("a", 3));
  const kbstore::WalPosition pos = store->wal_position();
  EXPECT_EQ(pos.generation, store->wal_generation());
  EXPECT_EQ(pos.seq, store->durable_seq());
  EXPECT_EQ(pos.seq, 3u);
  EXPECT_NE(pos.chain_crc, 0u);

  // The position is a pure function of the durable bytes: reopening the
  // store (which re-walks the WAL) reproduces it exactly.
  store.reset();
  store = Store::open(dir.path, every_append());
  ASSERT_NE(store, nullptr);
  const kbstore::WalPosition reopened = store->wal_position();
  EXPECT_EQ(reopened.generation, pos.generation);
  EXPECT_EQ(reopened.seq, pos.seq);
  EXPECT_EQ(reopened.chain_crc, pos.chain_crc);

  // Compaction folds the log into a snapshot: new generation, empty WAL.
  ASSERT_TRUE(store->compact());
  const kbstore::WalPosition compacted = store->wal_position();
  EXPECT_EQ(compacted.generation, pos.generation + 1);
  EXPECT_EQ(compacted.seq, 0u);
  EXPECT_EQ(compacted.chain_crc, 0u);
}

TEST(KbStore, WalPositionAdvancesOnlyWithDurability) {
  TempStoreDir dir("kbstore_test_walpos_batch");
  kbstore::Options opts;
  opts.flush = kbstore::Options::Flush::Manual;
  opts.background_compaction = false;
  auto store = Store::open(dir.path, opts);
  ASSERT_NE(store, nullptr);

  // Un-flushed group-commit bytes are readable in-process but are not
  // durable — the position (what replication may ship) must not move.
  store->append(sample("a", 1));
  store->append(sample("b", 2));
  EXPECT_EQ(store->size(), 2u);
  EXPECT_EQ(store->wal_position().seq, 0u);

  ASSERT_TRUE(store->sync());
  const kbstore::WalPosition synced = store->wal_position();
  EXPECT_EQ(synced.seq, 2u);
  EXPECT_NE(synced.chain_crc, 0u);
}

}  // namespace
