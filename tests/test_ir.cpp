// IR unit tests: instruction predicates, constant folding semantics,
// record layout under both pointer widths, module image construction,
// builder/verifier behaviour, CFG analyses, and fingerprint stability.
#include <gtest/gtest.h>

#include "ir/analysis.hpp"
#include "ir/builder.hpp"
#include "ir/fingerprint.hpp"
#include "ir/printer.hpp"
#include "ir/verifier.hpp"
#include "support/assert.hpp"

namespace {

using namespace ilc::ir;

// --- instruction predicates -----------------------------------------

TEST(Instr, TerminatorClassification) {
  Instr j;
  j.op = Opcode::Jump;
  EXPECT_TRUE(is_terminator(j));
  Instr a;
  a.op = Opcode::Add;
  EXPECT_FALSE(is_terminator(a));
  Instr r;
  r.op = Opcode::Ret;
  EXPECT_TRUE(is_terminator(r));
}

TEST(Instr, PurityExcludesMemoryAndControl) {
  Instr add;
  add.op = Opcode::Add;
  EXPECT_TRUE(is_pure(add));
  Instr ld;
  ld.op = Opcode::Load;
  EXPECT_FALSE(is_pure(ld));
  Instr st;
  st.op = Opcode::Store;
  EXPECT_FALSE(is_pure(st));
  Instr call;
  call.op = Opcode::Call;
  EXPECT_FALSE(is_pure(call));
}

TEST(Instr, StoreUsesBothAddressAndValue) {
  Instr st;
  st.op = Opcode::Store;
  st.a = 3;
  st.b = 7;
  std::array<Reg, 2 + kMaxCallArgs> uses;
  unsigned n = 0;
  append_uses(st, uses, n);
  ASSERT_EQ(n, 2u);
  EXPECT_EQ(uses[0], 3u);
  EXPECT_EQ(uses[1], 7u);
}

TEST(Fold, WrappingAndEdgeCases) {
  std::int64_t out = 0;
  EXPECT_TRUE(fold_constant(Opcode::Add, INT64_MAX, 1, out));
  EXPECT_EQ(out, INT64_MIN);  // two's-complement wrap
  EXPECT_TRUE(fold_constant(Opcode::Div, 7, 0, out));
  EXPECT_EQ(out, 0);  // defined division by zero
  EXPECT_TRUE(fold_constant(Opcode::Rem, 7, 0, out));
  EXPECT_EQ(out, 7);
  EXPECT_TRUE(fold_constant(Opcode::Div, INT64_MIN, -1, out));
  EXPECT_EQ(out, INT64_MIN);  // no UB overflow
  EXPECT_TRUE(fold_constant(Opcode::Shl, 1, 64, out));
  EXPECT_EQ(out, 1);  // shift amounts masked to 0..63
  EXPECT_TRUE(fold_constant(Opcode::Shr, -8, 1, out));
  EXPECT_EQ(out, -4);  // arithmetic shift
  EXPECT_FALSE(fold_constant(Opcode::Load, 1, 2, out));
}

TEST(Fold, Comparisons) {
  std::int64_t out = 0;
  fold_constant(Opcode::CmpLt, -1, 1, out);
  EXPECT_EQ(out, 1);
  fold_constant(Opcode::CmpGe, -1, 1, out);
  EXPECT_EQ(out, 0);
  fold_constant(Opcode::Min, -5, 3, out);
  EXPECT_EQ(out, -5);
}

// --- record layout -----------------------------------------------------

TEST(RecordLayout, NaturalAlignmentAt8ByteptrWidth) {
  RecordType t;
  t.name = "n";
  t.fields = {{"pot", FieldKind::I64},
              {"p1", FieldKind::Ptr},
              {"p2", FieldKind::Ptr},
              {"v", FieldKind::I32}};
  const RecordLayout lay = layout_record(t, 8);
  EXPECT_EQ(lay.offsets, (std::vector<std::uint32_t>{0, 8, 16, 24}));
  EXPECT_EQ(lay.stride, 32u);
}

TEST(RecordLayout, ShrinksUnderPointerCompression) {
  RecordType t;
  t.fields = {{"pot", FieldKind::I64},
              {"p1", FieldKind::Ptr},
              {"p2", FieldKind::Ptr},
              {"v", FieldKind::I32}};
  const RecordLayout lay = layout_record(t, 4);
  EXPECT_EQ(lay.offsets, (std::vector<std::uint32_t>{0, 8, 12, 16}));
  EXPECT_EQ(lay.stride, 24u);  // 20 rounded to 8-byte alignment
  EXPECT_EQ(lay.widths[1], 4u);
}

TEST(RecordLayout, MixedNarrowFields) {
  RecordType t;
  t.fields = {{"a", FieldKind::I8},
              {"b", FieldKind::I16},
              {"c", FieldKind::I8},
              {"d", FieldKind::I32}};
  const RecordLayout lay = layout_record(t, 8);
  EXPECT_EQ(lay.offsets, (std::vector<std::uint32_t>{0, 2, 4, 8}));
  EXPECT_EQ(lay.stride, 12u);
}

// --- module / image -----------------------------------------------------

TEST(Module, ImageResolvesPointerInits) {
  Module m;
  RecordType t;
  t.name = "cell";
  t.fields = {{"next", FieldKind::Ptr}, {"v", FieldKind::I64}};
  const RecordId rec = m.add_record(t);

  Global g;
  g.name = "cells";
  g.kind = GlobalKind::RecordArray;
  g.record = rec;
  g.count = 3;
  g.field_init.resize(2);
  g.field_init[0] = {{1, 2, -1}, 0};  // 0 -> 1 -> 2 -> null
  g.field_init[1].values = {10, 20, 30};
  const GlobalId cells = m.add_global(g);

  const MemoryImage img = m.build_image();
  const auto lay = m.record_layout(rec);
  const std::uint64_t base = img.global_base[cells];

  auto read_ptr = [&](std::uint64_t addr) {
    std::uint64_t v = 0;
    for (unsigned i = 0; i < img.ptr_bytes; ++i)
      v |= static_cast<std::uint64_t>(img.bytes[addr + i]) << (8 * i);
    return v;
  };
  EXPECT_EQ(read_ptr(base + 0 * lay.stride), base + 1 * lay.stride);
  EXPECT_EQ(read_ptr(base + 1 * lay.stride), base + 2 * lay.stride);
  EXPECT_EQ(read_ptr(base + 2 * lay.stride), 0u);  // null
}

TEST(Module, ImageIdenticalChainAfterCompression) {
  Module m;
  RecordType t;
  t.fields = {{"next", FieldKind::Ptr}, {"v", FieldKind::I64}};
  const RecordId rec = m.add_record(t);
  Global g;
  g.name = "cells";
  g.kind = GlobalKind::RecordArray;
  g.record = rec;
  g.count = 2;
  g.field_init.resize(2);
  g.field_init[0] = {{1, -1}, 0};
  m.add_global(g);

  m.set_ptr_bytes(4);
  const MemoryImage img = m.build_image();
  EXPECT_EQ(img.ptr_bytes, 4u);
  const auto lay = m.record_layout(rec);
  EXPECT_EQ(lay.stride, 16u);  // 4(next)+pad4+8(v)? -> next@0, v@8
  std::uint64_t v = 0;
  for (unsigned i = 0; i < 4; ++i)
    v |= static_cast<std::uint64_t>(img.bytes[img.global_base[0] + i])
         << (8 * i);
  EXPECT_EQ(v, img.global_base[0] + lay.stride);
}

TEST(Module, GlobalsAlignedAndDisjoint) {
  Module m;
  Global a;
  a.name = "a";
  a.elem_width = 1;
  a.count = 3;
  Global b;
  b.name = "b";
  b.elem_width = 8;
  b.count = 10;
  m.add_global(a);
  m.add_global(b);
  const MemoryImage img = m.build_image();
  EXPECT_GE(img.global_base[0], MemoryImage::kNullGuard);
  EXPECT_EQ(img.global_base[0] % 64, 0u);
  EXPECT_GE(img.global_base[1], img.global_base[0] + 3);
  EXPECT_EQ(img.global_base[1] % 64, 0u);
  EXPECT_GE(img.stack_base, img.global_base[1] + 80);
}

// --- builder + verifier ---------------------------------------------

Module simple_module() {
  Module m;
  FunctionBuilder b(m, "main", 0);
  Reg x = b.imm(2);
  Reg y = b.imm(3);
  b.ret(b.add(x, y));
  b.finish();
  return m;
}

TEST(Builder, ProducesVerifiableFunction) {
  Module m = simple_module();
  EXPECT_EQ(verify(m), "");
}

TEST(Builder, RefusesUnterminatedFinish) {
  Module m;
  FunctionBuilder b(m, "f", 0);
  b.imm(1);  // no terminator
  EXPECT_THROW(b.finish(), ilc::support::CheckError);
}

TEST(Builder, RefusesEmitAfterTerminator) {
  Module m;
  FunctionBuilder b(m, "f", 0);
  b.ret();
  EXPECT_THROW(b.imm(1), ilc::support::CheckError);
}

TEST(Verifier, CatchesBadRegister) {
  Module m = simple_module();
  m.function(0).blocks[0].insts[2].a = 999;
  EXPECT_NE(verify(m), "");
}

TEST(Verifier, CatchesBadBranchTarget) {
  Module m;
  FunctionBuilder b(m, "f", 0);
  Reg c = b.imm(1);
  BlockId t = b.new_block(), f = b.new_block();
  b.br(c, t, f);
  b.switch_to(t);
  b.ret();
  b.switch_to(f);
  b.ret();
  b.finish();
  m.function(0).blocks[0].terminator().t1 = 57;
  EXPECT_NE(verify(m), "");
}

TEST(Verifier, CatchesStaleTaggedImmediate) {
  Module m;
  RecordType t;
  t.fields = {{"next", FieldKind::Ptr}, {"v", FieldKind::I64}};
  const RecordId rec = m.add_record(t);
  Global g;
  g.name = "cells";
  g.kind = GlobalKind::RecordArray;
  g.record = rec;
  g.count = 1;
  const GlobalId gid = m.add_global(g);
  FunctionBuilder b(m, "f", 0);
  Reg addr = b.global_addr(gid);
  // Load the pointer field: its access width must track the layout.
  b.ret(b.load_field(addr, rec, 0));
  b.finish();
  EXPECT_EQ(verify(m), "");
  // Change layout without patching code: verifier must object.
  m.set_ptr_bytes(4);
  EXPECT_NE(verify(m), "");
}

// --- analyses ----------------------------------------------------------

Module diamond_module() {
  // bb0 -> (bb1 | bb2) -> bb3, with a loop bb3 -> bb1.
  Module m;
  FunctionBuilder b(m, "f", 1);
  Reg i = b.fresh();
  b.imm_to(i, 0);
  BlockId head = b.new_block(), left = b.new_block(), right = b.new_block(),
          tail = b.new_block(), exit = b.new_block();
  b.jump(head);
  b.switch_to(head);
  b.br(b.cmp_lt_i(i, 10), left, exit);
  b.switch_to(left);
  b.jump(tail);
  b.switch_to(right);  // unreachable block
  b.jump(tail);
  b.switch_to(tail);
  b.mov_to(i, b.add_i(i, 1));
  b.jump(head);
  b.switch_to(exit);
  b.ret(i);
  b.finish();
  return m;
}

TEST(Analysis, RpoStartsAtEntryAndSkipsUnreachable) {
  Module m = diamond_module();
  const auto rpo = reverse_post_order(m.function(0));
  EXPECT_EQ(rpo.front(), 0u);
  for (BlockId b : rpo) EXPECT_NE(b, 3u);  // 'right' is unreachable
}

TEST(Analysis, DominatorsOfLoop) {
  Module m = diamond_module();
  const Function& fn = m.function(0);
  Cfg cfg(fn);
  const auto idom = immediate_dominators(fn, cfg);
  EXPECT_EQ(idom[1], 0u);                   // head dominated by entry
  EXPECT_TRUE(dominates(idom, 1, 2));       // head dominates body
  EXPECT_TRUE(dominates(idom, 0, 5));
  EXPECT_EQ(idom[3], kNoBlock);             // unreachable
}

TEST(Analysis, FindsNaturalLoop) {
  Module m = diamond_module();
  const auto loops = find_loops(m.function(0));
  ASSERT_EQ(loops.size(), 1u);
  EXPECT_EQ(loops[0].header, 1u);
  EXPECT_TRUE(loops[0].contains(2));
  EXPECT_TRUE(loops[0].contains(4));
  EXPECT_FALSE(loops[0].contains(5));
}

TEST(Analysis, LivenessTracksLoopVariable) {
  Module m = diamond_module();
  const Function& fn = m.function(0);
  Cfg cfg(fn);
  const Liveness lv = compute_liveness(fn, cfg);
  // The induction register (defined in entry, used in head/tail/exit) is
  // live into the loop header.
  bool found = false;
  for (Reg r = 0; r < fn.num_regs; ++r)
    if (lv.live_in[1].contains(r)) found = true;
  EXPECT_TRUE(found);
}

TEST(Analysis, BlockFrequenciesScaleWithLoopDepth) {
  Module m = diamond_module();
  const auto freq = block_frequencies(m.function(0));
  EXPECT_DOUBLE_EQ(freq[0], 1.0);
  EXPECT_DOUBLE_EQ(freq[2], 10.0);  // in-loop block
}

TEST(RegSetOps, InsertEraseMergeCount) {
  RegSet s(128);
  s.insert(0);
  s.insert(127);
  EXPECT_TRUE(s.contains(0));
  EXPECT_TRUE(s.contains(127));
  EXPECT_EQ(s.count(), 2u);
  RegSet t(128);
  t.insert(64);
  EXPECT_TRUE(s.merge(t));
  EXPECT_FALSE(s.merge(t));  // second merge is a no-op
  s.erase(0);
  EXPECT_FALSE(s.contains(0));
  EXPECT_EQ(s.count(), 2u);
}

// --- printer / fingerprint ---------------------------------------------

TEST(Printer, RendersCoreShapes) {
  Module m = simple_module();
  const std::string text = to_string(m);
  EXPECT_NE(text.find("func @main(0)"), std::string::npos);
  EXPECT_NE(text.find("= imm 2"), std::string::npos);
  EXPECT_NE(text.find("= add r0, r1"), std::string::npos);
  EXPECT_NE(text.find("ret r2"), std::string::npos);
}

TEST(Fingerprint, StableAndStructureSensitive) {
  Module a = simple_module();
  Module b = simple_module();
  EXPECT_EQ(fingerprint(a), fingerprint(b));
  b.function(0).blocks[0].insts[0].imm = 99;
  EXPECT_NE(fingerprint(a), fingerprint(b));
}

TEST(Fingerprint, SensitiveToPtrWidth) {
  Module a = simple_module();
  Module b = simple_module();
  b.set_ptr_bytes(4);
  EXPECT_NE(fingerprint(a), fingerprint(b));
}

}  // namespace
